//! The generic checkpointed slave runner: the engine-independent half of
//! every checkpointed slave, driven through a
//! [`DistributionStrategy`](crate::session::strategy::DistributionStrategy).
//!
//! [`run`] owns the restart loop (run → gather → rollback → run again), the
//! per-invocation barrier protocol (done reports, stride-gated checkpoints,
//! heartbeat re-sends, barrier-time transfers and instructions), snapshot
//! speculation (racing a suspect's next invocation from the banked
//! snapshot), the rescue wait after a reported wedge, and the acknowledged
//! gather reply. The strategy supplies only the dependence-structure
//! specifics: the invocation body, transfer integration, snapshot layout,
//! and rollback restoration.

use crate::error::{slave_who, ProtocolError};
use crate::msg::Msg;
use crate::session::strategy::DistributionStrategy;
use crate::slave_common::{RollbackInfo, SlaveCommon};
use dlb_sim::ActorCtx;

/// Execute the whole checkpointed slave life cycle. Returns when the run
/// completes (gather acknowledged) or with a fatal error; recoverable
/// trouble is reported to the master and survived by rollback.
pub fn run<S: DistributionStrategy>(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    strategy: &mut S,
) -> Result<(), ProtocolError> {
    let total = strategy.invocations();
    let mut start = 0u64;
    let mut need_release = true;
    // Rejoin entry: a rejoiner arrives with the admission rollback already
    // stashed by the join handshake — adopt it instead of waiting for the
    // (never-sent) initial release.
    if let Some(rb) = common.pending_rollback.take() {
        start = apply_rollback(common, strategy, rb)?;
        need_release = false;
    }
    loop {
        // The gather reply lives *inside* the restart loop: a peer can die
        // while the master is collecting results, and the resulting
        // rollback must re-run the lost invocations on the survivors — so
        // a rollback arriving during the gather wait unwinds to here like
        // any other.
        let result = run_invocations(ctx, common, strategy, start, total, need_release)
            .and_then(|()| reply_gather(ctx, common, strategy));
        match result {
            Ok(()) => return Ok(()),
            Err(ProtocolError::RolledBack) => {}
            Err(e) if common.ft.is_some() && strategy.recoverable(&e) => {
                // Wedged (lost halo, torn protocol state): report and wait
                // to be rolled back rather than dying — the master answers
                // a SlaveError with a rollback, not an eviction.
                let msg = Msg::SlaveError {
                    slave: common.idx,
                    error: e,
                };
                common.send_master(ctx, msg);
                rescue_wait(ctx, common)?;
            }
            Err(e) => return Err(e),
        }
        let rb = common
            .pending_rollback
            .take()
            .ok_or_else(|| ProtocolError::Inconsistent {
                detail: format!(
                    "slave {}: rollback unwound with no pending payload",
                    common.idx
                ),
            })?;
        start = apply_rollback(common, strategy, rb)?;
        // The rollback itself releases the resumed invocation; no
        // InvocationStart follows.
        need_release = false;
    }
}

/// After shipping a `SlaveError`, wait for the master's rollback (stashed
/// in `pending_rollback`), an abort, or an eviction.
fn rescue_wait(ctx: &ActorCtx<Msg>, common: &mut SlaveCommon) -> Result<(), ProtocolError> {
    let ft = common.ft.clone().expect("rescue_wait requires fault mode");
    let mut tries = 0u32;
    loop {
        match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
            None => {
                tries += 1;
                if tries > ft.give_up_tries {
                    return Err(ProtocolError::Timeout {
                        who: slave_who(common.idx),
                        waiting_for: "rescue rollback",
                        at: ctx.now(),
                    });
                }
                // The master that would rescue us may itself be the casualty:
                // a deputy wedged here must still be able to stand.
                common.deputy_tick(ctx)?;
                // Keep the suspicion timer fed while waiting to be rescued:
                // the error report may have been dropped, and a silent wait
                // here reads as a second death.
                common.send_master(
                    ctx,
                    Msg::Alive {
                        slave: common.idx,
                        incarnation: common.incarnation,
                    },
                );
            }
            Some(env) => match env.msg {
                Msg::Abort => return Err(ProtocolError::Aborted),
                Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
                m => {
                    if common.election(ctx, &m)? {
                        // Failover traffic (a promotion repoints the master;
                        // the takeover rollback that follows rescues us).
                    } else if let Err(ProtocolError::RolledBack) = common.control(&m) {
                        return Ok(());
                    }
                    // anything else is stale traffic of the torn epoch — ignore
                }
            },
        }
    }
}

/// Adopt a rollback: fence the shared channel state (epoch, transfer
/// dedup, report bookkeeping, checkpoint cadence), then hand the snapshot
/// to the strategy to rebuild its own state. Returns the invocation to
/// resume from.
fn apply_rollback<S: DistributionStrategy>(
    common: &mut SlaveCommon,
    strategy: &mut S,
    rb: RollbackInfo,
) -> Result<u64, ProtocolError> {
    if !rb.survivors.contains(&common.idx) {
        return Err(ProtocolError::Evicted { slave: common.idx });
    }
    for s in 0..common.dead.len() {
        common.dead[s] = !rb.survivors.contains(&s);
    }
    common.reclaimed.clear();
    common.own_report_due.clear();
    common.rebase_epoch(rb.epoch);
    common.ckpt_stride = rb.ckpt_stride.max(1);
    strategy.restore(common, rb)
}

fn run_invocations<S: DistributionStrategy>(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    strategy: &mut S,
    start: u64,
    total: u64,
    need_release: bool,
) -> Result<(), ProtocolError> {
    if need_release {
        // Initial release: the end-of-invocation barrier consumes every
        // later InvocationStart.
        loop {
            let env = common.recv_blocking(
                ctx,
                |m| matches!(m, Msg::InvocationStart { .. } | Msg::Instructions(_)),
                strategy.first_release_context(),
            )?;
            match env.msg {
                Msg::InvocationStart {
                    invocation: 0,
                    ckpt_stride,
                } => {
                    common.ckpt_stride = ckpt_stride.max(1);
                    break;
                }
                Msg::InvocationStart {
                    invocation,
                    ckpt_stride,
                } => {
                    return Err(common.unexpected(
                        strategy.first_release_context(),
                        &Msg::InvocationStart {
                            invocation,
                            ckpt_stride,
                        },
                    ));
                }
                Msg::Instructions(_) => {}
                _ => unreachable!(),
            }
        }
    }

    for inv in start..total {
        strategy.run_invocation(ctx, common, inv)?;
        barrier(ctx, common, strategy, inv, inv + 1 == total)?;
    }
    Ok(())
}

fn send_done<S: DistributionStrategy>(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    strategy: &S,
    inv: u64,
) {
    let msg = Msg::InvocationDone {
        slave: common.idx,
        invocation: inv,
        epoch: common.epoch,
        sent_to: common.sent_to_vec(),
        received_from: common.recv_watermarks(),
        metric: 0.0,
        restore_seq: common.master_chan.watermark(),
        owned_ids: strategy.owned_ids(),
        replica_inv: common.replica_inv(),
    };
    common.send_master(ctx, msg);
}

/// Ship the barrier checkpoint — the state from which invocation `inv + 1`
/// starts — when the adaptive cadence says this barrier is a checkpoint
/// barrier. Best-effort: a dropped (or skipped) checkpoint only means the
/// master rolls back to an older complete snapshot.
fn send_checkpoint<S: DistributionStrategy>(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    strategy: &S,
    inv: u64,
) {
    if common.ft.is_none() {
        return;
    }
    if !(inv + 1).is_multiple_of(common.ckpt_stride.max(1)) {
        return;
    }
    let msg = Msg::Checkpoint {
        slave: common.idx,
        invocation: inv + 1,
        units: strategy.checkpoint_units(),
    };
    common.fault_stats.checkpoints_sent += 1;
    common.send_master(ctx, msg);
}

fn barrier<S: DistributionStrategy>(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    strategy: &mut S,
    inv: u64,
    is_final: bool,
) -> Result<(), ProtocolError> {
    send_done(ctx, common, strategy, inv);
    send_checkpoint(ctx, common, strategy, inv);
    let fault_mode = common.ft.is_some();
    let mut silent = 0u32;
    loop {
        let env = match common.ft.clone() {
            None => common.recv_blocking(ctx, |_| true, strategy.barrier_context())?,
            Some(ft) => match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
                Some(env) => {
                    silent = 0;
                    env
                }
                None => {
                    // Heartbeat: our done report (or the barrier release)
                    // may have been lost; refresh it, re-sending stalled
                    // transfers and the checkpoint with it.
                    silent += 1;
                    if silent > ft.give_up_tries {
                        return Err(ProtocolError::Timeout {
                            who: slave_who(common.idx),
                            waiting_for: strategy.barrier_context(),
                            at: ctx.now(),
                        });
                    }
                    common.resend_stalled_transfers(ctx);
                    common.deputy_tick(ctx)?;
                    send_done(ctx, common, strategy, inv);
                    send_checkpoint(ctx, common, strategy, inv);
                    continue;
                }
            },
        };
        match env.msg {
            Msg::Transfer(t) => {
                // Catch-up work done while incorporating counts toward this
                // invocation; the strategy flushes it (and any movement the
                // reply requests) before we refresh the done report.
                strategy.on_barrier_transfer(ctx, common, inv, t)?;
                send_done(ctx, common, strategy, inv);
                send_checkpoint(ctx, common, strategy, inv);
            }
            Msg::Instructions(instr) => {
                // Barrier-time moves keep the next invocation balanced. The
                // master cannot settle (and so cannot start the next
                // invocation or the gather) until these transfers are
                // acknowledged, so executing them here is always safe —
                // routed through the shared epoch/sequence fences so a
                // duplicated delivery cannot double-execute the moves.
                let moves = common.instructions_out_of_band(instr);
                if !moves.is_empty() {
                    strategy.on_barrier_moves(ctx, common, inv, moves)?;
                    send_done(ctx, common, strategy, inv);
                    send_checkpoint(ctx, common, strategy, inv);
                }
            }
            Msg::Speculate {
                seq,
                invocation,
                units,
            } if fault_mode => {
                // Race a silent suspect: advance the banked full-grid
                // snapshot by one invocation and ship the result as a
                // checkpoint for `invocation + 1`. The master commits by
                // rolling back onto the advanced snapshot (or simply by
                // banking it) and cancels by discarding it — either way the
                // speculative checkpoint is value-deterministic, so a
                // cancelled speculation leaves nothing to fence.
                if common.master_chan.fresh(seq) {
                    let advanced = strategy.advance_snapshot(ctx, common, invocation, units)?;
                    common.fault_stats.speculations_computed += 1;
                    let msg = Msg::Checkpoint {
                        slave: common.idx,
                        invocation: invocation + 1,
                        units: advanced,
                    };
                    common.fault_stats.checkpoints_sent += 1;
                    common.send_master(ctx, msg);
                }
                // The refreshed done report carries the new master-channel
                // watermark: the master's settlement waits for this ack.
                send_done(ctx, common, strategy, inv);
            }
            Msg::InvocationStart {
                invocation,
                ckpt_stride,
            } => {
                if invocation == inv + 1 && !is_final {
                    common.ckpt_stride = ckpt_stride.max(1);
                    return Ok(());
                }
                if fault_mode && invocation <= inv {
                    // Stale duplicate of an earlier release.
                    continue;
                }
                return Err(common.unexpected(
                    strategy.barrier_context(),
                    &Msg::InvocationStart {
                        invocation,
                        ckpt_stride,
                    },
                ));
            }
            Msg::Gather => {
                if is_final {
                    return Ok(());
                }
                return Err(common.unexpected(strategy.barrier_context(), &Msg::Gather));
            }
            Msg::Abort => return Err(ProtocolError::Aborted),
            Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
            Msg::Start { .. } | Msg::GatherAck if fault_mode => {} // duplicate deliveries
            m @ (Msg::TransferAck { .. } | Msg::Evicted { .. } | Msg::Rollback { .. }) => {
                common.control(&m)?;
            }
            m @ (Msg::Replica(_)
            | Msg::MasterPing { .. }
            | Msg::Candidacy { .. }
            | Msg::Vote { .. }
            | Msg::Promoted { .. }) => {
                common.election(ctx, &m)?;
            }
            other => match strategy.on_barrier_misc(ctx, common, inv, other)? {
                None => {}
                Some(m) => return Err(common.unexpected(strategy.barrier_context(), &m)),
            },
        }
    }
}

/// The final barrier consumed the Gather message; reply with the local
/// units. In fault mode, wait for the master's acknowledgement (re-sending
/// on duplicate `Gather` requests) so a dropped reply cannot lose the
/// result.
fn reply_gather<S: DistributionStrategy>(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    strategy: &S,
) -> Result<(), ProtocolError> {
    let payload = strategy.gather_units()?;
    let msg = Msg::GatherData {
        slave: common.idx,
        units: payload.clone(),
        fault_stats: common.fault_stats.clone(),
    };
    common.send_master(ctx, msg);
    let Some(ft) = common.ft.clone() else {
        return Ok(());
    };
    let mut tries = 0u32;
    loop {
        match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
            None => {
                tries += 1;
                if tries > ft.gather_patience {
                    // Assume the data arrived and the ack was lost.
                    return Ok(());
                }
                // The ack may be missing because the master died: a deputy
                // here must stand before patience runs out.
                common.deputy_tick(ctx)?;
            }
            Some(env) => match env.msg {
                Msg::Gather => {
                    tries = 0;
                    let msg = Msg::GatherData {
                        slave: common.idx,
                        units: payload.clone(),
                        fault_stats: common.fault_stats.clone(),
                    };
                    common.send_master(ctx, msg);
                }
                Msg::GatherAck | Msg::Abort => return Ok(()),
                Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
                // A peer died while the master was collecting results: the
                // rollback (or the transfer-ack bookkeeping that precedes
                // it) unwinds through the shared control path so the
                // restart loop re-runs the lost invocations.
                m @ (Msg::TransferAck { .. } | Msg::Evicted { .. } | Msg::Rollback { .. }) => {
                    common.control(&m)?;
                }
                m @ (Msg::Replica(_)
                | Msg::MasterPing { .. }
                | Msg::Candidacy { .. }
                | Msg::Vote { .. }
                | Msg::Promoted { .. }) => {
                    // A re-gather request from a newly promoted master must
                    // reach us at the new address, so promotions (and any
                    // election a master death here triggers) are serviced.
                    common.election(ctx, &m)?;
                }
                _ => {} // stale traffic
            },
        }
    }
}
