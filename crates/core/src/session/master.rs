//! Master-side session kernel: the state and transitions shared by both
//! fault-mode control loops (recoverable and checkpointed).
//!
//! `master.rs` drives the protocol — receive arms, timer sweeps, the
//! gather — but every structural transition lives here: membership and
//! eviction ([`Membership`]), the eviction fence and unit re-scatter
//! ([`Eviction`], [`resolve_evictions`]), speculation bookkeeping
//! ([`RestartSpec`], [`SnapshotSpec`]), and the checkpointed session
//! ([`CkSession`]) with its bank, epoch lifecycle, and rollback
//! orchestration.

use crate::balancer::Balancer;
use crate::error::{FaultToleranceConfig, ProtocolError};
use crate::master::InitUnitFn;
use crate::msg::{Instructions, Msg, UnitData};
use crate::protocol::SenderWindow;
use crate::recovery::{redistribute, RecoveryStats};
use crate::session::checkpoint::{checkpoint_stride, CheckpointBank};
use crate::session::membership::Membership;
use crate::session::speculation::{RestartSpec, SnapshotSpec};
use dlb_sim::{ActorCtx, ActorId, SimDuration, SimTime};
use std::collections::BTreeSet;

/// Send with the model's wire-size accounting.
pub(crate) fn send(ctx: &ActorCtx<Msg>, to: ActorId, msg: Msg) {
    let bytes = msg.wire_bytes();
    ctx.send(to, msg, bytes);
}

/// Elementwise monotone merge of per-channel counters. Counters only grow,
/// so taking the max makes duplicated or reordered reports harmless.
pub(crate) fn merge_max(dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (*d).max(s);
    }
}

/// Every transfer channel between live slaves has settled: everything slave
/// `a` ever sent to slave `b` has been applied at `b`. Channels touching a
/// dead slave are exempt — they are closed by the eviction protocol, which
/// re-owns whatever was still in flight.
pub(crate) fn channels_settled(alive: &[bool], sent: &[Vec<u64>], recv: &[Vec<u64>]) -> bool {
    let n = alive.len();
    (0..n).all(|a| !alive[a] || (0..n).all(|b| !alive[b] || recv[b][a] >= sent[a][b]))
}

/// A pending eviction: the master re-scatters the dead slave's units only
/// after every survivor has fenced off its channels with the dead peer and
/// reported its authoritative ownership ([`Msg::OwnReport`]). Until then
/// in-flight transfers could resurrect units behind the master's back.
pub(crate) struct Eviction {
    pub dead: usize,
    /// Survivors whose `OwnReport` about `dead` is still outstanding.
    pub awaiting: BTreeSet<usize>,
    /// What the master believed the dead slave owned (for the re-own
    /// accounting; the OwnReports are the authority).
    pub dead_owned: Vec<usize>,
}

/// Cancel the in-flight restart speculation (the suspect proved alive).
pub(crate) fn cancel_spec(
    ctx: &ActorCtx<Msg>,
    slaves: &[ActorId],
    win: &mut [SenderWindow<Msg>],
    spec: &mut Option<RestartSpec>,
    rec: &mut RecoveryStats,
) {
    if let Some(sp) = spec.take() {
        let msg = win[sp.executor]
            .send_with(|seq| Msg::SpecCancel {
                seq,
                spec_seq: sp.spec_seq,
            })
            .clone();
        send(ctx, slaves[sp.executor], msg);
        rec.speculations_cancelled += 1;
    }
}

/// All pending evictions are fully reported: compute the set of units no
/// survivor owns (directly or in an unacknowledged master message still in
/// flight), adopt speculation results for whatever they cover, and
/// re-scatter the rest from initial data.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resolve_evictions(
    ctx: &ActorCtx<Msg>,
    slaves: &[ActorId],
    n_units: usize,
    inv: u64,
    memb: &mut Membership,
    owned: &mut [BTreeSet<usize>],
    win: &mut [SenderWindow<Msg>],
    evictions: &mut Vec<Eviction>,
    spec: &mut Option<RestartSpec>,
    init_unit: &InitUnitFn,
    rec: &mut RecoveryStats,
) {
    let n = slaves.len();
    // Units accounted for: owned by a survivor, or inside an unacknowledged
    // Restore/SpecCommit payload (the owner's `owned_ids` cannot reflect
    // those yet — `restore_seq` and `owned_ids` travel atomically in
    // InvocationDone, so once the window is acked the report includes them).
    let mut assigned: BTreeSet<usize> = BTreeSet::new();
    for s in 0..n {
        if !memb.alive[s] {
            continue;
        }
        assigned.extend(owned[s].iter().copied());
        for (_, m) in win[s].unacked() {
            match m {
                Msg::Restore { units, .. } => {
                    assigned.extend(units.iter().map(|(id, _)| *id));
                }
                Msg::SpecCommit { ids, .. } => assigned.extend(ids.iter().copied()),
                _ => {}
            }
        }
    }
    // In-flight units the survivors re-owned by closing channels with the
    // dead peers (a proxy count: everything the dead slave was believed to
    // own that a survivor now accounts for).
    for ev in evictions.iter() {
        rec.units_reowned += ev
            .dead_owned
            .iter()
            .filter(|u| assigned.contains(u))
            .count() as u64;
    }
    let mut missing: Vec<usize> = (0..n_units).filter(|u| !assigned.contains(u)).collect();

    // Speculation first: if the suspect is among the dead, its units were
    // already recomputed on the executor — adopt them without replay.
    if spec.as_ref().is_some_and(|sp| !memb.alive[sp.suspect]) {
        let sp = spec.take().expect("checked above");
        let commit: Vec<usize> = missing
            .iter()
            .copied()
            .filter(|u| sp.ids.contains(u))
            .collect();
        if commit.is_empty() {
            let msg = win[sp.executor]
                .send_with(|seq| Msg::SpecCancel {
                    seq,
                    spec_seq: sp.spec_seq,
                })
                .clone();
            send(ctx, slaves[sp.executor], msg);
            rec.speculations_cancelled += 1;
        } else {
            missing.retain(|u| !commit.contains(u));
            owned[sp.executor].extend(commit.iter().copied());
            rec.units_speculated += commit.len() as u64;
            rec.speculations_committed += 1;
            memb.done[sp.executor] = false;
            let msg = win[sp.executor]
                .send_with(|seq| Msg::SpecCommit {
                    seq,
                    spec_seq: sp.spec_seq,
                    ids: commit,
                })
                .clone();
            send(ctx, slaves[sp.executor], msg);
        }
    }

    let survivors = memb.survivors();
    for (t, units) in redistribute(&missing, &survivors) {
        let payload: Vec<(usize, UnitData)> = units.iter().map(|&u| (u, init_unit(u))).collect();
        rec.units_restored += payload.len() as u64;
        owned[t].extend(units.iter().copied());
        memb.done[t] = false;
        let msg = win[t]
            .send_with(|seq| Msg::Restore {
                seq,
                invocation: inv,
                units: payload,
            })
            .clone();
        send(ctx, slaves[t], msg);
    }
    evictions.clear();
}

/// Mutable state of the checkpointed session: membership, epoch lifecycle,
/// the checkpoint bank, speculation, and the per-slave control windows.
/// `run_checkpointed` in `master.rs` drives it; the structural transitions
/// (eviction, rollback, speculation launch/commit/cancel, stride choice)
/// are methods here.
pub(crate) struct CkSession {
    pub memb: Membership,
    pub last_hook_seq: Vec<u64>,
    pub metrics: Vec<f64>,
    pub sent: Vec<Vec<u64>>,
    pub recv: Vec<Vec<u64>>,
    pub win: Vec<SenderWindow<Msg>>,
    pub unacked_instr: Vec<Option<(u64, Instructions, u32)>>,
    /// Current rollback epoch; all protocol state is fenced by it.
    pub epoch: u64,
    /// Invocation being settled.
    pub inv: u64,
    /// The current invocation was released by a `Rollback` (which doubles
    /// as the barrier release), so the head of the loop must not broadcast
    /// another `InvocationStart`.
    pub released: bool,
    /// Checkpoint fragments and the newest complete snapshot.
    pub bank: CheckpointBank,
    /// In-flight snapshot speculation, at most one.
    pub spec: Option<SnapshotSpec>,
    /// Checkpoint cadence currently in force (broadcast with each barrier
    /// release; always 1 when the adaptation is disabled).
    pub ckpt_stride: u64,
    /// Exponential moving average of the invocation wall time (seconds),
    /// for the restart-cost estimate fed to the balancer.
    pub ema_s: f64,
    pub inv_started: SimTime,
}

impl CkSession {
    pub fn new(now: SimTime, n: usize, tol: &FaultToleranceConfig) -> CkSession {
        CkSession {
            memb: Membership::new(n, now, tol.nudge),
            last_hook_seq: vec![0u64; n],
            metrics: vec![0.0; n],
            sent: vec![vec![0u64; n]; n],
            recv: vec![vec![0u64; n]; n],
            win: vec![SenderWindow::new(); n],
            unacked_instr: (0..n).map(|_| None).collect(),
            epoch: 0,
            inv: 0,
            released: false,
            bank: CheckpointBank::new(),
            spec: None,
            ckpt_stride: 1,
            ema_s: 0.0,
            inv_started: now,
        }
    }

    pub fn settled(&self, balancer: &Balancer) -> bool {
        let n = self.memb.n();
        (0..n).all(|s| !self.memb.alive[s] || (self.memb.done[s] && self.win[s].fully_acked()))
            && channels_settled(&self.memb.alive, &self.sent, &self.recv)
            && balancer.outstanding_orders() == 0
    }

    /// Fold a settled invocation's wall time into the EMA and pick the
    /// checkpoint stride for the next barrier release.
    pub fn fold_invocation_time(&mut self, now: SimTime, tol: &FaultToleranceConfig) {
        let dur = now.saturating_since(self.inv_started).as_secs_f64();
        self.ema_s = if self.ema_s == 0.0 {
            dur
        } else {
            0.5 * self.ema_s + 0.5 * dur
        };
        self.ckpt_stride = checkpoint_stride(tol.ckpt_max_skip, tol.ckpt_loss_budget, self.ema_s);
    }

    /// Declare a slave dead. The caller must follow up with `rollback` —
    /// pipelined/shrinking state cannot be recovered in place. A
    /// speculation involving the dead slave (as suspect or executor) is
    /// abandoned without ceremony: its checkpoint either already banked or
    /// never will.
    pub fn evict(
        &mut self,
        ctx: &ActorCtx<Msg>,
        slaves: &[ActorId],
        balancer: &mut Balancer,
        s: usize,
        rec: &mut RecoveryStats,
    ) {
        self.memb.evict(s);
        rec.slaves_declared_dead += 1;
        rec.first_death.get_or_insert(ctx.now());
        send(ctx, slaves[s], Msg::Evict);
        balancer.mark_dead(s);
        self.metrics[s] = 0.0;
        self.unacked_instr[s] = None;
        if self.spec.as_ref().is_some_and(|sp| sp.involves(s)) {
            self.spec = None;
        }
    }

    /// Roll the survivors back to the newest complete checkpoint (or the
    /// initial data when none was banked yet): bump the epoch, re-partition
    /// the snapshot contiguously over the survivors, and release the
    /// resumed invocation through the windowed `Rollback` itself. The
    /// estimated re-execution cost is handed to the balancer so marginal
    /// moves stop looking profitable while the run is catching up.
    #[allow(clippy::too_many_arguments)]
    pub fn rollback(
        &mut self,
        ctx: &ActorCtx<Msg>,
        slaves: &[ActorId],
        balancer: &mut Balancer,
        ck_init: &InitUnitFn,
        n_units: usize,
        tol: &FaultToleranceConfig,
        rec: &mut RecoveryStats,
    ) -> Result<(), ProtocolError> {
        let n = self.memb.n();
        let survivors = self.memb.survivors();
        if survivors.is_empty() {
            return Err(ProtocolError::AllSlavesDead);
        }
        let (ck_inv, snapshot) = self.bank.rollback_snapshot(n_units, &|id| ck_init(id));
        rec.rollbacks += 1;
        rec.units_rolled_back += snapshot.len() as u64;
        self.epoch += 1;
        self.spec = None;
        // Restart cost: invocations lost since the checkpoint (including
        // the partially-done one), priced at the running per-invocation
        // average. `ck_inv` can exceed `inv` when a complete checkpoint for
        // the *next* barrier arrived before this one settled — then nothing
        // is lost. (In that corner the convergence test for the skipped
        // settlement is never evaluated; acceptable for a WHILE loop, which
        // only ever runs a bounded number of extra invocations.)
        let lost_invs = (self.inv + 1).saturating_sub(ck_inv);
        balancer.set_restart_cost(SimDuration::from_secs_f64(self.ema_s * lost_invs as f64));
        self.ckpt_stride = checkpoint_stride(tol.ckpt_max_skip, tol.ckpt_loss_budget, self.ema_s);
        let ranges = crate::driver::block_ranges(n_units, survivors.len());
        let mut counts = vec![0u64; n];
        let epoch = self.epoch;
        let ckpt_stride = self.ckpt_stride;
        for (k, &sv) in survivors.iter().enumerate() {
            let (lo, hi) = ranges[k];
            counts[sv] = (hi - lo) as u64;
            let units: Vec<(usize, UnitData)> = snapshot[lo..hi].to_vec();
            let msg = self.win[sv]
                .send_with(|seq| Msg::Rollback {
                    seq,
                    epoch,
                    invocation: ck_inv,
                    survivors: survivors.clone(),
                    ckpt_stride,
                    units,
                })
                .clone();
            send(ctx, slaves[sv], msg);
        }
        balancer.rebase(self.epoch, counts);
        // Everything tracked under the old epoch is void: the slaves reset
        // their channels on rebase, so the settlement matrices restart from
        // zero, and old-epoch instructions must never be replayed.
        for row in self.sent.iter_mut().chain(self.recv.iter_mut()) {
            row.iter_mut().for_each(|v| *v = 0);
        }
        self.unacked_instr.iter_mut().for_each(|u| *u = None);
        self.inv = ck_inv;
        self.released = true;
        let now = ctx.now();
        for &sv in &survivors {
            self.memb.last_heard[sv] = now;
            self.memb.next_nudge[sv] = now + tol.nudge;
            self.memb.done[sv] = false;
        }
        Ok(())
    }

    /// Try to launch a snapshot speculation for the silent `suspect`: hand
    /// the banked snapshot to an idle, fully settled survivor, which
    /// advances it by one invocation and returns it as an ordinary
    /// checkpoint. If the suspect is then evicted, the rollback restarts
    /// one invocation further ahead; if it speaks, the race is cancelled
    /// master-side at zero wire cost.
    pub fn speculate(
        &mut self,
        ctx: &ActorCtx<Msg>,
        slaves: &[ActorId],
        ck_init: &InitUnitFn,
        n_units: usize,
        suspect: usize,
        rec: &mut RecoveryStats,
    ) {
        if self.spec.is_some() || self.memb.done[suspect] {
            return;
        }
        let (ck_inv, snapshot) = self.bank.rollback_snapshot(n_units, &|id| ck_init(id));
        // Speculating past the invocation being settled would race work the
        // run has not reached; the corner where a complete checkpoint for
        // the next barrier already banked needs no race at all.
        if ck_inv > self.inv {
            return;
        }
        let n = self.memb.n();
        let Some(e) = (0..n).find(|&e| {
            e != suspect && self.memb.alive[e] && self.memb.done[e] && self.win[e].fully_acked()
        }) else {
            return;
        };
        let msg = self.win[e]
            .send_with(|seq| Msg::Speculate {
                seq,
                invocation: ck_inv,
                units: snapshot,
            })
            .clone();
        send(ctx, slaves[e], msg);
        self.spec = Some(SnapshotSpec {
            suspect,
            executor: e,
            invocation: ck_inv,
        });
        rec.speculations_launched += 1;
    }

    /// The suspect spoke: cancel the in-flight snapshot speculation, if it
    /// was about `speaker`. Master-local — the executor's checkpoint, if it
    /// still arrives, banks as a redundant fragment.
    pub fn cancel_speculation_for(&mut self, speaker: usize, rec: &mut RecoveryStats) {
        if self
            .spec
            .as_ref()
            .is_some_and(|sp| sp.cancelled_by(speaker))
        {
            self.spec = None;
            rec.speculations_cancelled += 1;
        }
    }

    /// A checkpoint arrived: if it is the speculative result, account the
    /// commit. The caller banks the units normally either way.
    pub fn note_speculative_checkpoint(
        &mut self,
        slave: usize,
        invocation: u64,
        units: usize,
        rec: &mut RecoveryStats,
    ) {
        if self
            .spec
            .as_ref()
            .is_some_and(|sp| sp.committed_by(slave, invocation))
        {
            self.spec = None;
            rec.speculations_committed += 1;
            rec.units_speculated += units as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::{Balancer, BalancerConfig};
    use dlb_sim::{NodeConfig, SimBuilder};

    fn unit(v: f64) -> UnitData {
        vec![vec![v]]
    }

    fn balancer(n: usize) -> Balancer {
        Balancer::new(
            BalancerConfig {
                enabled: false,
                ..BalancerConfig::default()
            },
            vec![1; n],
            SimDuration::from_millis(100),
            SimDuration::from_millis(1),
            4,
            1.0,
        )
    }

    /// Run `body` inside a real master actor with `n` inert slave actors,
    /// so session methods can send on genuine `ActorCtx` channels.
    fn in_actor(n: usize, body: impl FnOnce(&ActorCtx<Msg>, &[ActorId]) + Send + 'static) {
        let mut sim = SimBuilder::<Msg>::new();
        let master_node = sim.add_node(NodeConfig::default());
        let slave_nodes: Vec<_> = (0..n)
            .map(|_| sim.add_node(NodeConfig::default()))
            .collect();
        let slave_ids: Vec<ActorId> = slave_nodes
            .into_iter()
            .enumerate()
            .map(|(i, node)| sim.spawn(node, format!("slave{i}"), |_ctx| {}))
            .collect();
        sim.spawn(master_node, "master", move |ctx| {
            body(&ctx, &slave_ids);
        });
        sim.run();
    }

    #[test]
    fn eviction_during_rollback_rolls_back_again_cleanly() {
        in_actor(3, |ctx, slaves| {
            let tol = FaultToleranceConfig::default();
            let mut sess = CkSession::new(ctx.now(), 3, &tol);
            let mut bal = balancer(3);
            let mut rec = RecoveryStats::default();
            let ck_init: InitUnitFn = Box::new(|id| unit(id as f64));

            // Bank a complete checkpoint for invocation 2, then lose slave 0.
            sess.inv = 2;
            sess.sent[0][1] = 5;
            assert!(sess.bank.offer(
                2,
                (0..3).map(|id| (id, unit(id as f64 + 10.0))).collect(),
                3
            ));
            sess.evict(ctx, slaves, &mut bal, 0, &mut rec);
            sess.rollback(ctx, slaves, &mut bal, &ck_init, 3, &tol, &mut rec)
                .expect("two survivors remain");
            assert_eq!(sess.epoch, 1);
            assert_eq!(sess.inv, 2, "restart at the banked invocation");
            assert!(sess.released);
            assert_eq!(sess.win[1].unacked().count(), 1, "rollback is windowed");

            // A second slave dies while that rollback is still
            // unacknowledged: evict + rollback again. The second rollback
            // supersedes the first (higher epoch), the dead slaves get no
            // message, and the remaining survivor's window holds both
            // rollbacks until acked.
            sess.evict(ctx, slaves, &mut bal, 1, &mut rec);
            sess.rollback(ctx, slaves, &mut bal, &ck_init, 3, &tol, &mut rec)
                .expect("one survivor remains");
            assert_eq!(sess.epoch, 2);
            assert_eq!(rec.rollbacks, 2);
            assert_eq!(rec.slaves_declared_dead, 2);
            assert_eq!(sess.memb.survivors(), vec![2]);
            assert_eq!(sess.win[2].unacked().count(), 2);
            // Settlement matrices were voided.
            assert!(sess.sent.iter().flatten().all(|&v| v == 0));

            // Last survivor dies: nothing left to roll back onto.
            sess.evict(ctx, slaves, &mut bal, 2, &mut rec);
            assert_eq!(
                sess.rollback(ctx, slaves, &mut bal, &ck_init, 3, &tol, &mut rec),
                Err(ProtocolError::AllSlavesDead)
            );
        });
    }

    #[test]
    fn speculation_commits_via_banked_checkpoint_and_cancels_on_heartbeat() {
        in_actor(3, |ctx, slaves| {
            let tol = FaultToleranceConfig::default();
            let mut sess = CkSession::new(ctx.now(), 3, &tol);
            let mut rec = RecoveryStats::default();
            let ck_init: InitUnitFn = Box::new(|id| unit(id as f64));

            // Slave 1 is parked done; slave 0 goes silent at invocation 0.
            sess.memb.done[1] = true;
            sess.speculate(ctx, slaves, &ck_init, 3, 0, &mut rec);
            assert_eq!(rec.speculations_launched, 1);
            let sp = sess.spec.clone().expect("speculation in flight");
            assert_eq!(sp.executor, 1);
            assert_eq!(sp.invocation, 0, "no checkpoint banked: seeds from init");
            assert_eq!(sess.win[1].unacked().count(), 1);

            // A second launch attempt is refused while one is in flight.
            sess.speculate(ctx, slaves, &ck_init, 3, 0, &mut rec);
            assert_eq!(rec.speculations_launched, 1);

            // The executor's speculative checkpoint arrives: commit.
            sess.note_speculative_checkpoint(1, 1, 3, &mut rec);
            assert_eq!(rec.speculations_committed, 1);
            assert_eq!(rec.units_speculated, 3);
            assert!(sess.spec.is_none());

            // The executor's refreshed done report acks the Speculate —
            // until then its window is not settled and no further
            // speculation may target it.
            sess.speculate(ctx, slaves, &ck_init, 3, 0, &mut rec);
            assert_eq!(rec.speculations_launched, 1, "executor not yet acked");
            let spec_seq = sess.win[1].seq_sent();
            sess.win[1].ack(spec_seq);

            // Second round: this time the suspect heartbeats first.
            sess.speculate(ctx, slaves, &ck_init, 3, 0, &mut rec);
            assert_eq!(rec.speculations_launched, 2);
            sess.cancel_speculation_for(0, &mut rec);
            assert_eq!(rec.speculations_cancelled, 1);
            assert!(sess.spec.is_none());
            // The executor's late checkpoint now commits nothing.
            sess.note_speculative_checkpoint(1, 1, 3, &mut rec);
            assert_eq!(rec.speculations_committed, 1);
        });
    }

    #[test]
    fn speculation_requires_an_idle_settled_executor() {
        in_actor(2, |ctx, slaves| {
            let tol = FaultToleranceConfig::default();
            let mut sess = CkSession::new(ctx.now(), 2, &tol);
            let mut rec = RecoveryStats::default();
            let ck_init: InitUnitFn = Box::new(|id| unit(id as f64));
            // Nobody is done: no executor, no launch.
            sess.speculate(ctx, slaves, &ck_init, 2, 0, &mut rec);
            assert_eq!(rec.speculations_launched, 0);
            assert!(sess.spec.is_none());
            // The only candidate is the suspect itself.
            sess.memb.done[0] = true;
            sess.speculate(ctx, slaves, &ck_init, 2, 0, &mut rec);
            assert_eq!(rec.speculations_launched, 0);
        });
    }
}
