//! The strategy interface between the shared checkpointed slave runner
//! ([`crate::session::slave`]) and the per-dependence-structure engines.
//!
//! The runner owns everything that keeps a checkpointed slave *alive* —
//! the restart loop, barrier protocol, checkpoint cadence, speculation,
//! rescue wait, gather reply. A [`DistributionStrategy`] supplies only
//! what differs between dependence structures: how an invocation is
//! computed, how mid-protocol transfers and movement orders integrate,
//! what a snapshot looks like, and how to resume from one.

use crate::error::ProtocolError;
use crate::msg::{MoveOrder, Msg, TransferMsg, UnitData};
use crate::slave_common::{RollbackInfo, SlaveCommon};
use dlb_sim::ActorCtx;

/// One distribution pattern (pipelined sweeps, shrinking steps) plugged
/// into the generic checkpointed slave runner.
///
/// Invariants the runner relies on:
///
/// * [`run_invocation`](DistributionStrategy::run_invocation) leaves the
///   strategy at the barrier of `inv`: all local work done, final hook
///   fired, pending movement executed.
/// * [`checkpoint_units`](DistributionStrategy::checkpoint_units) is the
///   state from which invocation `inv + 1` starts — value-deterministic,
///   so snapshots bank across epochs.
/// * [`advance_snapshot`](DistributionStrategy::advance_snapshot) is a
///   *pure* function of its snapshot argument: it must not read or write
///   live engine state, and must not hook, move work, or message peers —
///   it races a whole invocation on one idle slave.
pub trait DistributionStrategy {
    /// Total number of invocations (sweeps, steps) the run executes.
    fn invocations(&self) -> u64;

    /// Wait context for the initial barrier release (timeout diagnostics).
    fn first_release_context(&self) -> &'static str;

    /// Wait context for the per-invocation barrier (timeout diagnostics).
    fn barrier_context(&self) -> &'static str;

    /// Errors this engine reports and survives (by rollback) instead of
    /// dying from.
    fn recoverable(&self, e: &ProtocolError) -> bool;

    /// Compute invocation `inv` end to end: the loop body, the final
    /// transfer drain, the unconditional end-of-invocation hook firing,
    /// and any movement it ordered.
    fn run_invocation(
        &mut self,
        ctx: &ActorCtx<Msg>,
        common: &mut SlaveCommon,
        inv: u64,
    ) -> Result<(), ProtocolError>;

    /// A work transfer arrived while parked at the barrier of `inv`. The
    /// strategy routes it through the shared dedup/epoch fences itself
    /// (via [`SlaveCommon::accept_transfer`]) and does whatever follow-up
    /// its pattern needs (catch-up computation, hook firing, counter
    /// moves). The runner refreshes the done report and checkpoint after.
    fn on_barrier_transfer(
        &mut self,
        ctx: &ActorCtx<Msg>,
        common: &mut SlaveCommon,
        inv: u64,
        t: TransferMsg,
    ) -> Result<(), ProtocolError>;

    /// Execute movement orders received at the barrier of `inv` (already
    /// fenced by sequence/epoch). The runner refreshes done + checkpoint.
    fn on_barrier_moves(
        &mut self,
        ctx: &ActorCtx<Msg>,
        common: &mut SlaveCommon,
        inv: u64,
        moves: Vec<MoveOrder>,
    ) -> Result<(), ProtocolError>;

    /// A message the runner's barrier does not understand. Return `None`
    /// when consumed (e.g. a pivot broadcast racing ahead), or give it
    /// back to be reported as a protocol violation.
    fn on_barrier_misc(
        &mut self,
        ctx: &ActorCtx<Msg>,
        common: &mut SlaveCommon,
        inv: u64,
        msg: Msg,
    ) -> Result<Option<Msg>, ProtocolError> {
        let _ = (ctx, common, inv);
        Ok(Some(msg))
    }

    /// Unit ids this slave currently owns (for `InvocationDone`).
    fn owned_ids(&self) -> Vec<usize>;

    /// Snapshot of the local state at the current barrier — the state from
    /// which the next invocation starts.
    fn checkpoint_units(&self) -> Vec<(usize, UnitData)>;

    /// The final result payload. May fail when local state is torn (e.g.
    /// columns still set aside) — the runner then reports and parks for
    /// rescue like any other recoverable error.
    fn gather_units(&self) -> Result<Vec<(usize, UnitData)>, ProtocolError>;

    /// Adopt a rollback: rebuild engine state from the re-partitioned
    /// snapshot and the survivor list. The runner has already fenced the
    /// channels, rebased the epoch, and adopted the checkpoint stride;
    /// this only installs the engine's own state. Returns the invocation
    /// to resume from.
    fn restore(&mut self, common: &mut SlaveCommon, rb: RollbackInfo)
        -> Result<u64, ProtocolError>;

    /// Speculation: advance the full-grid snapshot (the state at
    /// `invocation`) by one invocation, sequentially and without any
    /// communication, and return the state at `invocation + 1`. Charges
    /// CPU via [`ActorCtx::advance_work`] directly so the raced work never
    /// distorts this slave's measured work rate.
    fn advance_snapshot(
        &mut self,
        ctx: &ActorCtx<Msg>,
        common: &mut SlaveCommon,
        invocation: u64,
        units: Vec<(usize, UnitData)>,
    ) -> Result<Vec<(usize, UnitData)>, ProtocolError>;
}
