//! The membership table: per-slave liveness, suspicion timers, nudge
//! scheduling, and barrier-completion flags.
//!
//! Both fault-mode master loops (recoverable and checkpointed) used to keep
//! four parallel `Vec`s of this state inline; the table factors them into
//! one place with the timer arithmetic — silence measurement, nudge
//! re-arming, eviction — expressed once.

use dlb_sim::{SimDuration, SimTime};

/// Per-slave liveness and barrier state as seen by the master.
///
/// Indices are slave indices (`0..n`), not node ids. Eviction removes a
/// slave from the computation; a false suspicion is resolved either by the
/// evicted slave exiting, or — when rejoin is enabled — by it coming back
/// through the [`crate::msg::Msg::Join`] handshake with a fresh incarnation
/// ([`Self::readmit`]). Traffic stamped with an older incarnation belongs to
/// the slave's previous life and must be fenced, never credited.
#[derive(Clone, Debug)]
pub struct Membership {
    /// Still part of the computation.
    pub alive: Vec<bool>,
    /// Admission incarnation of each slave's current (or, if evicted, most
    /// recent) life. Bumped by [`Self::readmit`]; a liveness ping is only
    /// credited when its stamped incarnation matches this table, so a
    /// zombie from before the rejoin cannot defer suspicion of the new life.
    pub incarnation: Vec<u64>,
    /// Ever heard from at all (distinguishes "lost the Start" from
    /// "went silent mid-run").
    pub heard_any: Vec<bool>,
    /// Instant of the last *protocol* message from each slave.
    pub last_heard: Vec<SimTime>,
    /// Instant of the last bare liveness ping ([`crate::msg::Msg::Alive`]).
    /// Kept separate from `last_heard` so pings defer suspicion without
    /// starving the silence-gated re-send paths (a pinging slave may be
    /// pinging precisely *because* it lost the message those paths re-send).
    pub last_ping: Vec<SimTime>,
    /// Next instant the nudge timer may fire for each slave.
    pub next_nudge: Vec<SimTime>,
    /// Reported done for the current invocation.
    pub done: Vec<bool>,
}

impl Membership {
    pub fn new(n: usize, now: SimTime, nudge: SimDuration) -> Membership {
        Membership {
            alive: vec![true; n],
            incarnation: vec![0; n],
            heard_any: vec![false; n],
            last_heard: vec![now; n],
            last_ping: vec![now; n],
            next_nudge: vec![now + nudge; n],
            done: vec![false; n],
        }
    }

    pub fn n(&self) -> usize {
        self.alive.len()
    }

    /// Record traffic from slave `s`: refreshes the suspicion timer and
    /// marks the slave as heard.
    pub fn heard(&mut self, s: usize, now: SimTime) {
        self.heard_any[s] = true;
        self.last_heard[s] = now;
    }

    /// Record a bare liveness ping ([`crate::msg::Msg::Alive`]): refreshes
    /// the suspicion clock but *not* `last_heard` or `heard_any` — the
    /// repair paths key off protocol silence ([`Self::unheard_for`]), and a
    /// pinging slave may be pinging precisely because it lost the message
    /// they re-send.
    pub fn ping(&mut self, s: usize, now: SimTime) {
        self.last_ping[s] = now;
    }

    /// How long slave `s` has shown no sign of life (neither protocol
    /// traffic nor a liveness ping). Feeds suspicion and speculation.
    pub fn silent_for(&self, s: usize, now: SimTime) -> SimDuration {
        now.saturating_since(self.last_heard[s].max(self.last_ping[s]))
    }

    /// How long since slave `s` made *protocol progress* (pings excluded).
    /// Feeds the silence-gated re-send paths: a slave can vouch for its own
    /// liveness, but only a real protocol message proves it is unstuck.
    pub fn unheard_for(&self, s: usize, now: SimTime) -> SimDuration {
        now.saturating_since(self.last_heard[s])
    }

    /// True when the nudge timer for `s` has expired; re-arms it for
    /// `interval` from now when it has (so each expiry fires once).
    pub fn nudge_due(&mut self, s: usize, now: SimTime, interval: SimDuration) -> bool {
        if now >= self.next_nudge[s] {
            self.next_nudge[s] = now + interval;
            true
        } else {
            false
        }
    }

    /// Push the nudge timer for `s` out to `interval` from now (after a
    /// direct send, so the timer does not immediately re-fire).
    pub fn rearm_nudge(&mut self, s: usize, now: SimTime, interval: SimDuration) {
        self.next_nudge[s] = now + interval;
    }

    /// Indices of the slaves still alive, in order.
    pub fn survivors(&self) -> Vec<usize> {
        (0..self.n()).filter(|&s| self.alive[s]).collect()
    }

    pub fn any_alive(&self) -> bool {
        self.alive.iter().any(|&a| a)
    }

    /// All living slaves report done.
    pub fn all_done(&self) -> bool {
        (0..self.n()).all(|s| !self.alive[s] || self.done[s])
    }

    /// Evict slave `s`: removal from the computation (reversed only by
    /// [`Self::readmit`]).
    pub fn evict(&mut self, s: usize) {
        self.alive[s] = false;
        self.done[s] = false;
    }

    /// Readmit slave `s` under a new incarnation: fresh liveness clocks,
    /// alive again, barrier not yet satisfied. The incarnation comes from
    /// the joiner's `Msg::Join` so both sides agree on which life is
    /// current; it must be newer than the one on record (callers fence
    /// duplicate/stale joins before admitting).
    pub fn readmit(&mut self, s: usize, incarnation: u64, now: SimTime, nudge: SimDuration) {
        debug_assert!(incarnation >= self.incarnation[s]);
        self.alive[s] = true;
        self.incarnation[s] = incarnation;
        self.heard_any[s] = true;
        self.last_heard[s] = now;
        self.last_ping[s] = now;
        self.next_nudge[s] = now + nudge;
        self.done[s] = false;
    }

    /// Reset barrier-completion flags and timers for a new invocation or
    /// after a rollback (living slaves only; the dead stay done = false).
    pub fn reset_barrier(&mut self, now: SimTime, nudge: SimDuration) {
        for s in 0..self.n() {
            self.done[s] = false;
            self.last_heard[s] = now;
            self.last_ping[s] = now;
            self.next_nudge[s] = now + nudge;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn silence_is_measured_from_last_traffic() {
        let mut m = Membership::new(2, t(0), SimDuration::from_secs(2));
        m.heard(0, t(1_000));
        assert_eq!(m.silent_for(0, t(5_000)), SimDuration::from_micros(4_000));
        assert_eq!(m.silent_for(1, t(5_000)), SimDuration::from_micros(5_000));
        assert!(m.heard_any[0]);
        assert!(!m.heard_any[1]);
    }

    #[test]
    fn pings_defer_suspicion_but_not_protocol_silence() {
        let mut m = Membership::new(1, t(0), SimDuration::from_secs(2));
        m.heard(0, t(1_000));
        m.ping(0, t(4_000));
        // Liveness clock follows the ping…
        assert_eq!(m.silent_for(0, t(5_000)), SimDuration::from_micros(1_000));
        // …but protocol progress does not, so re-send gates still fire.
        assert_eq!(m.unheard_for(0, t(5_000)), SimDuration::from_micros(4_000));
        assert!(m.heard_any[0]);
        // A ping alone never counts as having spoken.
        let mut fresh = Membership::new(1, t(0), SimDuration::from_secs(2));
        fresh.ping(0, t(1_000));
        assert!(!fresh.heard_any[0]);
    }

    #[test]
    fn nudge_fires_once_per_expiry_and_rearms() {
        let nudge = SimDuration::from_secs(1);
        let mut m = Membership::new(1, t(0), nudge);
        assert!(!m.nudge_due(0, t(500_000), nudge), "not yet expired");
        assert!(m.nudge_due(0, t(1_000_000), nudge));
        assert!(
            !m.nudge_due(0, t(1_000_001), nudge),
            "must re-arm after firing"
        );
        assert!(m.nudge_due(0, t(2_000_001), nudge));
    }

    #[test]
    fn eviction_drops_done_and_removes_from_survivors() {
        let mut m = Membership::new(3, t(0), SimDuration::from_secs(1));
        m.done[1] = true;
        m.evict(1);
        assert_eq!(m.survivors(), vec![0, 2]);
        assert!(!m.done[1], "a dead slave cannot satisfy the barrier");
        assert!(m.any_alive());
        m.evict(0);
        m.evict(2);
        assert!(!m.any_alive());
    }

    #[test]
    fn readmit_reverses_eviction_with_fresh_clocks() {
        let nudge = SimDuration::from_secs(1);
        let mut m = Membership::new(3, t(0), nudge);
        m.heard(1, t(1_000));
        m.done[1] = true;
        m.evict(1);
        assert_eq!(m.survivors(), vec![0, 2]);
        m.readmit(1, 1, t(10_000_000), nudge);
        assert_eq!(m.survivors(), vec![0, 1, 2]);
        assert_eq!(m.incarnation[1], 1);
        assert!(!m.done[1], "rejoiner has not satisfied the new barrier");
        assert!(m.heard_any[1]);
        // Both clocks restart at the admission instant: the ten virtual
        // seconds the slave spent dead must not read as suspicion.
        assert_eq!(m.silent_for(1, t(10_000_000)), SimDuration::ZERO);
        assert_eq!(m.unheard_for(1, t(10_000_000)), SimDuration::ZERO);
        assert!(!m.nudge_due(1, t(10_000_001), nudge), "nudge re-armed");
    }

    /// A join racing the eviction of the same slave id: the eviction lands
    /// first (the table is settled state — the master queues joins until no
    /// eviction is pending), then the readmit flips it back under a newer
    /// incarnation. The old incarnation's traffic is fenceable afterwards.
    #[test]
    fn readmit_after_racing_eviction_bumps_incarnation() {
        let nudge = SimDuration::from_secs(1);
        let mut m = Membership::new(2, t(0), nudge);
        assert_eq!(m.incarnation[0], 0);
        m.evict(0);
        m.readmit(0, 3, t(500), nudge);
        assert!(m.alive[0]);
        // A zombie ping stamped with the old incarnation fails the table
        // match (the caller checks `incarnation[s] == stamped`), so only
        // the new life can defer suspicion.
        assert_ne!(m.incarnation[0], 0);
        assert_eq!(m.incarnation[0], 3);
    }

    /// Deputies reuse a one-row table to watch the *master* under the same
    /// two-clock rules: `MasterPing` feeds the ping clock and defers the
    /// election trigger (`silent_for`), while the replica re-request paths
    /// key off protocol silence (`unheard_for`), which pings never touch.
    #[test]
    fn master_watch_pings_defer_election_but_not_replica_staleness() {
        let nudge = SimDuration::from_secs(2);
        let mut w = Membership::new(1, t(0), nudge);
        w.heard(0, t(1_000_000)); // a replica arrived at t=1s
        for k in 2..=9u64 {
            w.ping(0, t(k * 1_000_000)); // pings every second after
        }
        let now = t(9_500_000);
        // The election trigger sees half a second of silence…
        assert_eq!(w.silent_for(0, now), SimDuration::from_micros(500_000));
        // …while the replica clock shows 8.5 s without protocol progress.
        assert_eq!(w.unheard_for(0, now), SimDuration::from_micros(8_500_000));
    }

    /// The reverse edge: protocol traffic alone (no pings at all) must also
    /// keep the election trigger quiet — `silent_for` is the *later* of the
    /// two clocks, so neither clock alone can trip it.
    #[test]
    fn master_watch_either_clock_defers_the_trigger() {
        let mut w = Membership::new(1, t(0), SimDuration::from_secs(2));
        w.ping(0, t(3_000));
        w.heard(0, t(5_000));
        assert_eq!(w.silent_for(0, t(6_000)), SimDuration::from_micros(1_000));
        w.ping(0, t(7_000));
        assert_eq!(w.silent_for(0, t(8_000)), SimDuration::from_micros(1_000));
    }

    #[test]
    fn barrier_completion_ignores_the_dead() {
        let mut m = Membership::new(3, t(0), SimDuration::from_secs(1));
        m.done[0] = true;
        m.done[2] = true;
        assert!(!m.all_done());
        m.evict(1);
        assert!(m.all_done(), "the dead do not block the barrier");
        m.reset_barrier(t(10), SimDuration::from_secs(1));
        assert!(!m.all_done());
    }
}
