//! Speculation bookkeeping: racing a silent slave's work on an idle
//! survivor before suspicion expires.
//!
//! Two flavours share the bookkeeping here:
//!
//! * **Restart speculation** ([`RestartSpec`], independent engine): the
//!   suspect's units are re-seeded from their initial state on an idle
//!   survivor; on eviction the speculative results are adopted with a
//!   `SpecCommit`, on a late heartbeat they are discarded with `SpecCancel`.
//! * **Snapshot speculation** ([`SnapshotSpec`], pipelined and shrinking
//!   engines): the executor advances the *whole banked snapshot* by one
//!   invocation and returns it as an ordinary `Msg::Checkpoint` — sound
//!   because snapshots are value-deterministic and carry no epoch. Commit
//!   is implicit (the checkpoint banks normally); cancel is master-local
//!   (the suspect spoke, so the speculative checkpoint is simply a
//!   redundant fragment for an invocation the run will re-reach).
//!
//! At most one speculation is in flight at a time, and never while an
//! eviction is being resolved.

/// An in-flight restart speculation (independent engine).
#[derive(Clone, Debug)]
pub struct RestartSpec {
    /// The silent slave whose units are being raced.
    pub suspect: usize,
    /// The idle survivor computing them speculatively.
    pub executor: usize,
    /// Sequence number of the `Speculate` message on the executor's window
    /// (a matching `SpecCommit`/`SpecCancel` refers to this batch).
    pub spec_seq: u64,
    /// Unit ids being raced.
    pub ids: Vec<usize>,
}

/// An in-flight snapshot speculation (checkpointed engines).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotSpec {
    /// The silent slave that motivated the race.
    pub suspect: usize,
    /// The idle survivor advancing the banked snapshot.
    pub executor: usize,
    /// Invocation of the banked snapshot handed to the executor; the
    /// speculative checkpoint comes back for `invocation + 1`.
    pub invocation: u64,
}

impl SnapshotSpec {
    /// The suspect spoke: the race is moot, cancel master-side. (No wire
    /// message — an unwanted speculative checkpoint is inert, it banks as
    /// a redundant fragment.)
    pub fn cancelled_by(&self, speaker: usize) -> bool {
        speaker == self.suspect
    }

    /// A checkpoint from `slave` for `invocation` is the speculative
    /// result: the executor returned the snapshot advanced by one.
    pub fn committed_by(&self, slave: usize, invocation: u64) -> bool {
        slave == self.executor && invocation == self.invocation + 1
    }

    /// The race is dead if either party left the computation.
    pub fn involves(&self, slave: usize) -> bool {
        slave == self.suspect || slave == self.executor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SnapshotSpec {
        SnapshotSpec {
            suspect: 1,
            executor: 2,
            invocation: 5,
        }
    }

    #[test]
    fn commit_matches_only_the_executor_at_the_next_invocation() {
        let s = spec();
        assert!(s.committed_by(2, 6));
        assert!(!s.committed_by(2, 5), "the seed snapshot is not the result");
        assert!(!s.committed_by(2, 7));
        assert!(!s.committed_by(1, 6), "the suspect cannot commit the race");
        assert!(!s.committed_by(0, 6));
    }

    #[test]
    fn heartbeat_cancel_beats_a_later_commit() {
        // Race: the suspect heartbeats before the executor's speculative
        // checkpoint arrives. The cancel clears the slot, so the late
        // checkpoint is handled as an ordinary (redundant) fragment.
        let mut slot = Some(spec());
        let speaker = 1;
        if slot.as_ref().is_some_and(|s| s.cancelled_by(speaker)) {
            slot = None;
        }
        assert_eq!(slot, None);
        // The speculative checkpoint now finds no spec to commit.
        assert!(!slot.as_ref().is_some_and(|s| s.committed_by(2, 6)));
    }

    #[test]
    fn commit_beats_a_later_heartbeat() {
        // Race resolved the other way: the speculative checkpoint lands
        // first and commits; the suspect's late heartbeat cancels nothing.
        let mut slot = Some(spec());
        if slot.as_ref().is_some_and(|s| s.committed_by(2, 6)) {
            slot = None; // committed
        }
        assert_eq!(slot, None);
        assert!(!slot.as_ref().is_some_and(|s| s.cancelled_by(1)));
    }

    #[test]
    fn eviction_of_either_party_kills_the_race() {
        let s = spec();
        assert!(s.involves(1));
        assert!(s.involves(2));
        assert!(!s.involves(0));
    }

    #[test]
    fn unrelated_speakers_do_not_cancel() {
        let s = spec();
        assert!(!s.cancelled_by(0));
        assert!(!s.cancelled_by(2), "the executor's traffic is not a cancel");
        assert!(s.cancelled_by(1));
    }
}
