//! The session kernel: everything the master/slave runtime needs to keep a
//! distributed computation *alive* — membership, epochs, checkpoints,
//! speculation — factored out of the engines so each engine is only a
//! distribution strategy.
//!
//! Layering (bottom up):
//!
//! * [`crate::protocol`] — pure window types (sequence numbers, ack
//!   watermarks, transfer channels). No policy.
//! * `session` (this module) — the shared liveness/ownership substrate:
//!   - [`membership`]: the per-slave liveness table with suspicion timers,
//!     nudge scheduling, and eviction;
//!   - [`checkpoint`]: the checkpoint bank, rollback sourcing, and the
//!     adaptive checkpoint cadence;
//!   - [`speculation`]: racing a suspect's work on an idle survivor,
//!     commit-or-cancel before suspicion expires;
//!   - [`master`]: the master-side session ([`master::CkSession`]) tying
//!     those together with epoch fencing and per-slave control windows;
//!   - [`slave`]: the generic checkpointed slave runner (restart loop,
//!     barrier protocol, gather reply) driven through a
//!     [`strategy::DistributionStrategy`];
//!   - [`replica`]: the deputy role — control-plane replica absorption,
//!     master-silence watch, and the epoch-fenced election state machine
//!     behind master failover;
//!   - [`model`]: model-checkable abstractions of the restore, transfer,
//!     and election sub-protocols, exhaustively explored by `dlb-analyze`.
//! * Engines (`engine_independent`, `engine_pipelined`,
//!   `engine_shrinking`) — per-dependence-structure strategies: hook
//!   placement, adjacency constraints, and the actual numerics.

pub mod checkpoint;
pub(crate) mod master;
pub mod membership;
pub mod model;
pub mod replica;
pub mod slave;
pub mod speculation;
pub mod strategy;
