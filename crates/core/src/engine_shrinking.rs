//! Slave engine for shrinking distributed loops (LU-shaped programs, §4.7).
//!
//! At step `k` the owner of column `k` finalizes it, broadcasts its pivot
//! payload to every other slave, and retires it — data slices with no
//! future work become *inactive* and are never moved by the balancer. All
//! slaves then update their active columns (`j > k`). Work movement is
//! direct (no carried dependences) and only ships active columns; a column
//! arriving one step behind is caught up with the retained pivot history.
//!
//! The fault-tolerant life cycle (checkpoint cadence, rollback, snapshot
//! speculation, rescue, gather) lives in [`crate::session::slave`]; this
//! module supplies the shrinking [`DistributionStrategy`]: the pivot/update
//! step body, active/retired bookkeeping on rollback, and the sequential
//! one-step snapshot advance used to race a silent suspect. Pivot payloads
//! are pure functions of step-start state, so pivot broadcasts surviving
//! from before a rollback are bit-identical to their replayed versions;
//! transfers and balancing instructions are epoch-fenced.

use crate::balancer::InteractionMode;
use crate::error::{FaultToleranceConfig, ProtocolError};
use crate::kernels::ShrinkingKernel;
use crate::msg::{Edge, MoveOrder, MovedUnit, Msg, TransferMsg, UnitData};
use crate::session::slave as session_slave;
use crate::session::strategy::DistributionStrategy;
use crate::slave_common::{recv_start, RollbackInfo, SlaveCommon};
use dlb_sim::{ActorCtx, ActorId, CpuWork};
use std::collections::BTreeMap;
use std::sync::Arc;

struct SCol {
    data: Vec<f64>,
    /// Highest step whose update has been applied (-1 = none).
    updated_through: i64,
}

/// Static configuration for one shrinking-engine slave.
pub struct ShrinkingSlave {
    pub idx: usize,
    pub master: ActorId,
    pub mode: InteractionMode,
    pub hook_check_cpu: CpuWork,
    pub kernel: Arc<dyn ShrinkingKernel>,
    pub ft: Option<FaultToleranceConfig>,
    /// Master-failover kit (fault mode): lets this slave rebuild the master
    /// role in place if it wins a deputy election.
    pub takeover: Option<Arc<crate::master::TakeoverKit>>,
    /// Latecomer start time: when set, this slave starts with no columns,
    /// idles until the given instant, then joins the running pool via the
    /// [`Msg::Join`] handshake.
    pub join_at: Option<dlb_sim::SimTime>,
}

struct State {
    active: BTreeMap<usize, SCol>,
    retired: Vec<(usize, Vec<f64>)>,
    pivots: Vec<Option<Vec<f64>>>,
}

impl ShrinkingSlave {
    /// Actor body. Never panics on protocol trouble: fatal errors are
    /// shipped to the master as [`Msg::SlaveError`].
    pub fn run(self, ctx: ActorCtx<Msg>) {
        let (idx, master) = (self.idx, self.master);
        match self.run_inner(&ctx) {
            Ok(())
            | Err(ProtocolError::Aborted)
            | Err(ProtocolError::Evicted { .. })
            | Err(ProtocolError::JoinRefused { .. }) => {}
            Err(error) => {
                let msg = Msg::SlaveError { slave: idx, error };
                let bytes = msg.wire_bytes();
                ctx.send(master, msg, bytes);
            }
        }
    }

    fn run_inner(self, ctx: &ActorCtx<Msg>) -> Result<(), ProtocolError> {
        let (slaves, assignment, _block_rows) = recv_start(ctx, self.idx, self.ft.as_ref())?;
        let range = assignment[self.idx];
        let kernel = self.kernel;
        let n = kernel.n_units();
        let mut common = SlaveCommon::new(
            self.idx,
            self.master,
            slaves,
            self.mode,
            self.hook_check_cpu,
            self.ft.clone(),
            ctx.now(),
        );
        // Checkpointed engines measure replica freshness by the held
        // snapshot: a takeover restarts from it.
        common.enable_deputy(true, ctx.now());
        let st = State {
            active: (range.0..range.1)
                .map(|i| {
                    (
                        i,
                        SCol {
                            data: kernel.init_unit(i),
                            updated_through: -1,
                        },
                    )
                })
                .collect(),
            retired: Vec::new(),
            pivots: vec![None; n],
        };
        let mut strategy = ShrinkingStrategy { st, kernel };
        if let Some(at) = self.join_at {
            // Latecomer: the parked Start taught us the topology; idle to
            // the join instant, then announce. The admission rollback lands
            // in `pending_rollback` and is adopted by the session runner.
            common.park_then_join(ctx, at)?;
        }
        loop {
            match session_slave::run(ctx, &mut common, &mut strategy) {
                Err(ProtocolError::Elected { .. }) => {
                    // This deputy won the master election: drop the slave role
                    // and rebuild the master in place from the replicated seed.
                    let seed =
                        common
                            .takeover
                            .take()
                            .ok_or_else(|| ProtocolError::Inconsistent {
                                detail: format!(
                                    "slave {}: elected with no takeover seed",
                                    common.idx
                                ),
                            })?;
                    let kit =
                        self.takeover
                            .as_deref()
                            .ok_or_else(|| ProtocolError::Inconsistent {
                                detail: format!(
                                    "slave {}: elected with no takeover kit",
                                    common.idx
                                ),
                            })?;
                    return crate::master::run_takeover(ctx, kit, seed, common.idx);
                }
                Err(ProtocolError::Evicted { .. })
                    if self.ft.as_ref().is_some_and(|ft| ft.rejoin_attempts > 0) =>
                {
                    // Eviction is no longer the end of the line: come back
                    // as a fresh incarnation and ask to be re-admitted. The
                    // rebuilt common starts with clean channel/epoch state;
                    // the old life's windows and clocks die with it.
                    let incarnation = common.incarnation + 1;
                    let (master, slaves) = (common.master, common.slaves.clone());
                    common = SlaveCommon::new(
                        self.idx,
                        master,
                        slaves,
                        self.mode,
                        self.hook_check_cpu,
                        self.ft.clone(),
                        ctx.now(),
                    );
                    common.incarnation = incarnation;
                    common.enable_deputy(true, ctx.now());
                    common.join_handshake(ctx)?;
                }
                r => return r,
            }
        }
    }
}

/// The shrinking distribution pattern plugged into the shared checkpointed
/// slave runner.
struct ShrinkingStrategy {
    st: State,
    kernel: Arc<dyn ShrinkingKernel>,
}

impl DistributionStrategy for ShrinkingStrategy {
    fn invocations(&self) -> u64 {
        (self.kernel.n_units() as u64).saturating_sub(1)
    }

    fn first_release_context(&self) -> &'static str {
        "first step start"
    }

    fn barrier_context(&self) -> &'static str {
        "step barrier"
    }

    fn recoverable(&self, e: &ProtocolError) -> bool {
        matches!(
            e,
            ProtocolError::Timeout { .. }
                | ProtocolError::MissingPivot { .. }
                | ProtocolError::Inconsistent { .. }
                | ProtocolError::UnexpectedMessage { .. }
        )
    }

    fn run_invocation(
        &mut self,
        ctx: &ActorCtx<Msg>,
        common: &mut SlaveCommon,
        inv: u64,
    ) -> Result<(), ProtocolError> {
        let st = &mut self.st;
        let kernel = &*self.kernel;
        let k = inv as usize;
        step(ctx, common, st, kernel, k)?;
        // Flush the final partial period (and execute any late moves)
        // before reporting the step done.
        drain_transfers(ctx, common, st, kernel, k)?;
        let moves = common.fire(ctx, inv, st.active.len() as u64)?;
        execute_moves(ctx, common, st, k, moves)
    }

    fn on_barrier_transfer(
        &mut self,
        ctx: &ActorCtx<Msg>,
        common: &mut SlaveCommon,
        inv: u64,
        t: TransferMsg,
    ) -> Result<(), ProtocolError> {
        let st = &mut self.st;
        let kernel = &*self.kernel;
        let k = inv as usize;
        if common.accept_transfer(ctx, &t) {
            incorporate(common, st, t, k)?;
            // Arrivals may still need this step's update.
            loop {
                let next = st
                    .active
                    .iter()
                    .find(|(_, c)| c.updated_through < k as i64)
                    .map(|(&id, _)| id);
                let Some(j) = next else { break };
                update_column(ctx, common, st, kernel, j, k)?;
            }
            let active = st.active.len() as u64;
            let moves = common.fire(ctx, inv, active)?;
            execute_moves(ctx, common, st, k, moves)?;
        }
        Ok(())
    }

    fn on_barrier_moves(
        &mut self,
        ctx: &ActorCtx<Msg>,
        common: &mut SlaveCommon,
        inv: u64,
        moves: Vec<MoveOrder>,
    ) -> Result<(), ProtocolError> {
        execute_moves(ctx, common, &mut self.st, inv as usize, moves)
    }

    fn on_barrier_misc(
        &mut self,
        _ctx: &ActorCtx<Msg>,
        _common: &mut SlaveCommon,
        _inv: u64,
        msg: Msg,
    ) -> Result<Option<Msg>, ProtocolError> {
        if let Msg::Pivot { step, values } = msg {
            // A pivot broadcast racing ahead of the release; bank it
            // (idempotent — pivot payloads are value-deterministic).
            self.st.pivots[step as usize] = Some(values);
            return Ok(None);
        }
        Ok(Some(msg))
    }

    fn owned_ids(&self) -> Vec<usize> {
        let mut owned: Vec<usize> = self.st.retired.iter().map(|(id, _)| *id).collect();
        owned.extend(self.st.active.keys().copied());
        owned
    }

    fn checkpoint_units(&self) -> Vec<(usize, UnitData)> {
        let mut units: Vec<(usize, UnitData)> = self
            .st
            .retired
            .iter()
            .map(|(id, data)| (*id, vec![data.clone()]))
            .collect();
        units.extend(
            self.st
                .active
                .iter()
                .map(|(&id, c)| (id, vec![c.data.clone()])),
        );
        units
    }

    fn gather_units(&self) -> Result<Vec<(usize, UnitData)>, ProtocolError> {
        Ok(self.checkpoint_units())
    }

    /// Ids below the resumed step are retired (their data is final), the
    /// rest are active and updated through the previous step.
    fn restore(
        &mut self,
        _common: &mut SlaveCommon,
        rb: RollbackInfo,
    ) -> Result<u64, ProtocolError> {
        let st = &mut self.st;
        let n = self.kernel.n_units();
        let k = rb.invocation;
        st.active.clear();
        st.retired.clear();
        st.pivots = vec![None; n];
        for (id, mut d) in rb.units {
            let data = if d.is_empty() {
                Vec::new()
            } else {
                d.swap_remove(0)
            };
            if (id as u64) < k {
                st.retired.push((id, data));
            } else {
                st.active.insert(
                    id,
                    SCol {
                        data,
                        updated_through: k as i64 - 1,
                    },
                );
            }
        }
        Ok(k)
    }

    /// Run step `invocation` over the whole banked matrix, sequentially and
    /// without any communication: finalize the pivot column's payload, then
    /// update every later column through the step — exactly the distributed
    /// dataflow, so the speculative state is bit-identical to what the
    /// suspect would have produced. Columns at or below the step are final
    /// in the snapshot and pass through unchanged.
    fn advance_snapshot(
        &mut self,
        ctx: &ActorCtx<Msg>,
        common: &mut SlaveCommon,
        invocation: u64,
        units: Vec<(usize, UnitData)>,
    ) -> Result<Vec<(usize, UnitData)>, ProtocolError> {
        let kernel = &*self.kernel;
        let k = invocation as usize;
        let mut cols: Vec<(usize, Vec<f64>)> = units
            .into_iter()
            .map(|(id, mut d)| {
                (
                    id,
                    if d.is_empty() {
                        Vec::new()
                    } else {
                        d.swap_remove(0)
                    },
                )
            })
            .collect();
        cols.sort_by_key(|(id, _)| *id);
        let payload = {
            let col_k = cols.iter().find(|(id, _)| *id == k).ok_or_else(|| {
                ProtocolError::Inconsistent {
                    detail: format!(
                        "slave {}: speculation snapshot missing pivot column {k}",
                        common.idx
                    ),
                }
            })?;
            kernel.pivot_payload(k, &col_k.1)
        };
        for (id, data) in cols.iter_mut() {
            if *id > k {
                ctx.advance_work(kernel.step_cost(k));
                kernel.update(*id, data, &payload, k);
            }
        }
        Ok(cols.into_iter().map(|(id, d)| (id, vec![d])).collect())
    }
}

fn step(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn ShrinkingKernel,
    k: usize,
) -> Result<(), ProtocolError> {
    // Pivot phase: the owner finalizes and broadcasts column k.
    if let Some(col) = st.active.remove(&k) {
        if col.updated_through != k as i64 - 1 {
            return Err(ProtocolError::Inconsistent {
                detail: format!(
                    "slave {}: pivot column {k} updated through {} at step {k}",
                    common.idx, col.updated_through
                ),
            });
        }
        let payload = kernel.pivot_payload(k, &col.data);
        for to in 0..common.slaves.len() {
            if to != common.idx && !common.dead[to] {
                let msg = Msg::Pivot {
                    step: k as u64,
                    values: payload.clone(),
                };
                common.send_slave(ctx, to, msg);
            }
        }
        st.pivots[k] = Some(payload);
        st.retired.push((k, col.data));
    } else if st.pivots[k].is_none() {
        let want = k as u64;
        let env = common.recv_blocking(
            ctx,
            |m| matches!(m, Msg::Pivot { step, .. } if *step == want),
            "pivot broadcast",
        )?;
        if let Msg::Pivot { values, .. } = env.msg {
            st.pivots[k] = Some(values);
        }
    }

    // Update phase: bring every active column through step k, hooking after
    // each column update.
    loop {
        drain_transfers(ctx, common, st, kernel, k)?;
        let next = st
            .active
            .iter()
            .find(|(_, c)| c.updated_through < k as i64)
            .map(|(&id, _)| id);
        let Some(j) = next else { break };
        update_column(ctx, common, st, kernel, j, k)?;
        let active = st.active.len() as u64;
        let moves = common.hook(ctx, k as u64, active)?;
        execute_moves(ctx, common, st, k, moves)?;
    }
    Ok(())
}

fn update_column(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn ShrinkingKernel,
    j: usize,
    k: usize,
) -> Result<(), ProtocolError> {
    let col = st.active.get_mut(&j).expect("column present");
    let from = (col.updated_through + 1) as usize;
    for kk in from..=k {
        let Some(pivot) = st.pivots[kk].as_ref() else {
            // A caught-up column needs pivot history the protocol should
            // have delivered; its absence means a lost broadcast (or a
            // runtime bug) — either way the step cannot proceed.
            return Err(ProtocolError::MissingPivot {
                step: kk,
                column: j,
                slave: common.idx,
            });
        };
        common.compute(ctx, kernel.step_cost(kk));
        kernel.update(j, &mut col.data, pivot, kk);
        col.updated_through = kk as i64;
        common.record_done(1);
    }
    Ok(())
}

fn execute_moves(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    k: usize,
    moves: Vec<MoveOrder>,
) -> Result<(), ProtocolError> {
    if moves.is_empty() {
        return Ok(());
    }
    let t0 = ctx.now();
    let mut total = 0u64;
    for order in moves {
        if common.dead[order.to] {
            // Planned before the peer's death reached the master.
            continue;
        }
        let take = (order.count as usize).min(st.active.len());
        let ids: Vec<usize> = match order.edge {
            Edge::High => st.active.keys().rev().take(take).copied().collect(),
            Edge::Low => st.active.keys().take(take).copied().collect(),
        };
        let units: Vec<MovedUnit> = ids
            .into_iter()
            .map(|id| {
                let c = st.active.remove(&id).expect("picked id");
                MovedUnit {
                    id,
                    done: c.updated_through >= k as i64,
                    updated_through: c.updated_through.max(0) as u64,
                    data: vec![c.data],
                    old: None,
                }
            })
            .collect();
        total += units.len() as u64;
        let from = common.idx;
        common.send_transfer(ctx, order.to, |_| TransferMsg {
            from,
            seq: 0,
            epoch: 0,
            invocation: k as u64,
            effective_block: 0,
            units,
            right_old: None,
        });
    }
    common.move_cost_sample = Some((total, ctx.now().saturating_since(t0)));
    Ok(())
}

fn incorporate(
    common: &mut SlaveCommon,
    st: &mut State,
    t: TransferMsg,
    k: usize,
) -> Result<(), ProtocolError> {
    for mu in t.units {
        if mu.id <= k {
            return Err(ProtocolError::Inconsistent {
                detail: format!("slave {}: inactive column {} moved", common.idx, mu.id),
            });
        }
        // `updated_through` is only meaningful when the column is done for
        // the tagged step (it is >= k >= 0). An undone column is exactly one
        // step behind — per-step settlement guarantees it was updated
        // through k-1 (which may be -1 at step 0 and is not representable
        // in the wire field).
        let ut = if mu.done {
            (mu.updated_through as i64).min(k as i64)
        } else {
            k as i64 - 1
        };
        let mut data: UnitData = mu.data;
        let prev = st.active.insert(
            mu.id,
            SCol {
                data: if data.is_empty() {
                    Vec::new()
                } else {
                    data.swap_remove(0)
                },
                updated_through: ut,
            },
        );
        if prev.is_some() {
            return Err(ProtocolError::Inconsistent {
                detail: format!("slave {}: column {} duplicated by move", common.idx, mu.id),
            });
        }
    }
    Ok(())
}

fn drain_transfers(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn ShrinkingKernel,
    k: usize,
) -> Result<(), ProtocolError> {
    let _ = kernel;
    common.drain_control(ctx)?;
    while let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Transfer(_))) {
        if let Msg::Transfer(t) = env.msg {
            if common.accept_transfer(ctx, &t) {
                incorporate(common, st, t, k)?;
            }
        }
    }
    // Also bank any pivot broadcasts that raced ahead (idempotent under
    // duplicated deliveries; pivot payloads are value-deterministic, so
    // even pre-rollback stragglers are safe to bank).
    while let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Pivot { .. })) {
        if let Msg::Pivot { step, values } = env.msg {
            st.pivots[step as usize] = Some(values);
        }
    }
    if common.ft.is_some() {
        if let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Abort | Msg::Evict)) {
            return match env.msg {
                Msg::Abort => Err(ProtocolError::Aborted),
                _ => Err(ProtocolError::Evicted { slave: common.idx }),
            };
        }
    }
    Ok(())
}
