//! Slave engine for shrinking distributed loops (LU-shaped programs, §4.7).
//!
//! At step `k` the owner of column `k` finalizes it, broadcasts its pivot
//! payload to every other slave, and retires it — data slices with no
//! future work become *inactive* and are never moved by the balancer. All
//! slaves then update their active columns (`j > k`). Work movement is
//! direct (no carried dependences) and only ships active columns; a column
//! arriving one step behind is caught up with the retained pivot history.
//!
//! Under fault injection this engine is *detect-and-abort*: a crashed pivot
//! owner stalls every other slave, so blocking waits carry deadlines and
//! trouble surfaces as a typed [`ProtocolError`] (never a panic or a
//! deadlock).

use crate::balancer::InteractionMode;
use crate::error::{FaultToleranceConfig, ProtocolError};
use crate::kernels::ShrinkingKernel;
use crate::msg::{Edge, MoveOrder, MovedUnit, Msg, TransferMsg, UnitData};
use crate::slave_common::{recv_start, SlaveCommon};
use dlb_sim::{ActorCtx, ActorId, CpuWork};
use std::collections::BTreeMap;
use std::sync::Arc;

struct SCol {
    data: Vec<f64>,
    /// Highest step whose update has been applied (-1 = none).
    updated_through: i64,
}

/// Static configuration for one shrinking-engine slave.
pub struct ShrinkingSlave {
    pub idx: usize,
    pub master: ActorId,
    pub mode: InteractionMode,
    pub hook_check_cpu: CpuWork,
    pub kernel: Arc<dyn ShrinkingKernel>,
    pub ft: Option<FaultToleranceConfig>,
}

struct State {
    active: BTreeMap<usize, SCol>,
    retired: Vec<(usize, Vec<f64>)>,
    pivots: Vec<Option<Vec<f64>>>,
}

impl ShrinkingSlave {
    /// Actor body. Never panics on protocol trouble: fatal errors are
    /// shipped to the master as [`Msg::SlaveError`].
    pub fn run(self, ctx: ActorCtx<Msg>) {
        let (idx, master) = (self.idx, self.master);
        match self.run_inner(&ctx) {
            Ok(()) | Err(ProtocolError::Aborted) | Err(ProtocolError::Evicted { .. }) => {}
            Err(error) => {
                let msg = Msg::SlaveError { slave: idx, error };
                let bytes = msg.wire_bytes();
                ctx.send(master, msg, bytes);
            }
        }
    }

    fn run_inner(self, ctx: &ActorCtx<Msg>) -> Result<(), ProtocolError> {
        let (slaves, assignment, _block_rows) = recv_start(ctx, self.idx, self.ft.as_ref())?;
        let range = assignment[self.idx];
        let kernel = self.kernel;
        let n = kernel.n_units();
        let mut common = SlaveCommon::new(
            self.idx,
            self.master,
            slaves,
            self.mode,
            self.hook_check_cpu,
            self.ft.clone(),
            ctx.now(),
        );
        let mut st = State {
            active: (range.0..range.1)
                .map(|i| {
                    (
                        i,
                        SCol {
                            data: kernel.init_unit(i),
                            updated_through: -1,
                        },
                    )
                })
                .collect(),
            retired: Vec::new(),
            pivots: vec![None; n],
        };

        // Initial release (later steps are released by the barrier).
        loop {
            let env = common.recv_blocking(
                ctx,
                |m| matches!(m, Msg::InvocationStart { .. } | Msg::Instructions(_)),
                "first step start",
            )?;
            match env.msg {
                Msg::InvocationStart { invocation: 0 } => break,
                Msg::InvocationStart { invocation } => {
                    return Err(common.unexpected(
                        "waiting for first step",
                        &Msg::InvocationStart { invocation },
                    ));
                }
                Msg::Instructions(_) => {}
                _ => unreachable!(),
            }
        }

        let steps = (n as u64).saturating_sub(1);
        for k in 0..steps {
            step(ctx, &mut common, &mut st, &*kernel, k as usize)?;
            // Flush the final partial period (and execute any late moves)
            // before reporting the step done.
            drain_transfers(ctx, &mut common, &mut st, &*kernel, k as usize)?;
            let moves = common.fire(ctx, k, st.active.len() as u64)?;
            execute_moves(ctx, &mut common, &mut st, k as usize, moves);
            barrier(ctx, &mut common, &mut st, &*kernel, k, k + 1 == steps)?;
        }

        // Final barrier consumed Gather.
        let mut units: Vec<(usize, UnitData)> = st
            .retired
            .into_iter()
            .map(|(id, data)| (id, vec![data]))
            .collect();
        units.extend(st.active.into_iter().map(|(id, c)| (id, vec![c.data])));
        let msg = Msg::GatherData {
            slave: common.idx,
            units,
        };
        common.send_master(ctx, msg);
        Ok(())
    }
}

fn step(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn ShrinkingKernel,
    k: usize,
) -> Result<(), ProtocolError> {
    // Pivot phase: the owner finalizes and broadcasts column k.
    if let Some(col) = st.active.remove(&k) {
        assert_eq!(
            col.updated_through,
            k as i64 - 1,
            "pivot column not up to date at step {k}"
        );
        let payload = kernel.pivot_payload(k, &col.data);
        for to in 0..common.slaves.len() {
            if to != common.idx {
                let msg = Msg::Pivot {
                    step: k as u64,
                    values: payload.clone(),
                };
                common.send_slave(ctx, to, msg);
            }
        }
        st.pivots[k] = Some(payload);
        st.retired.push((k, col.data));
    } else if st.pivots[k].is_none() {
        let want = k as u64;
        let env = common.recv_blocking(
            ctx,
            |m| matches!(m, Msg::Pivot { step, .. } if *step == want),
            "pivot broadcast",
        )?;
        if let Msg::Pivot { values, .. } = env.msg {
            st.pivots[k] = Some(values);
        }
    }

    // Update phase: bring every active column through step k, hooking after
    // each column update.
    loop {
        drain_transfers(ctx, common, st, kernel, k)?;
        let next = st
            .active
            .iter()
            .find(|(_, c)| c.updated_through < k as i64)
            .map(|(&id, _)| id);
        let Some(j) = next else { break };
        update_column(ctx, common, st, kernel, j, k)?;
        let active = st.active.len() as u64;
        let moves = common.hook(ctx, k as u64, active)?;
        execute_moves(ctx, common, st, k, moves);
    }
    Ok(())
}

fn update_column(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn ShrinkingKernel,
    j: usize,
    k: usize,
) -> Result<(), ProtocolError> {
    let col = st.active.get_mut(&j).expect("column present");
    let from = (col.updated_through + 1) as usize;
    for kk in from..=k {
        let Some(pivot) = st.pivots[kk].as_ref() else {
            // A caught-up column needs pivot history the protocol should
            // have delivered; its absence means a lost broadcast (or a
            // runtime bug) — either way the step cannot proceed.
            return Err(ProtocolError::MissingPivot {
                step: kk,
                column: j,
                slave: common.idx,
            });
        };
        common.compute(ctx, kernel.step_cost(kk));
        kernel.update(j, &mut col.data, pivot, kk);
        col.updated_through = kk as i64;
        common.record_done(1);
    }
    Ok(())
}

fn execute_moves(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    k: usize,
    moves: Vec<MoveOrder>,
) {
    if moves.is_empty() {
        return;
    }
    let t0 = ctx.now();
    let mut total = 0u64;
    for order in moves {
        let take = (order.count as usize).min(st.active.len());
        let ids: Vec<usize> = match order.edge {
            Edge::High => st.active.keys().rev().take(take).copied().collect(),
            Edge::Low => st.active.keys().take(take).copied().collect(),
        };
        let units: Vec<MovedUnit> = ids
            .into_iter()
            .map(|id| {
                let c = st.active.remove(&id).expect("picked id");
                MovedUnit {
                    id,
                    done: c.updated_through >= k as i64,
                    updated_through: c.updated_through.max(0) as u64,
                    data: vec![c.data],
                    old: None,
                }
            })
            .collect();
        total += units.len() as u64;
        let msg = Msg::Transfer(TransferMsg {
            from: common.idx,
            invocation: k as u64,
            effective_block: 0,
            units,
            right_old: None,
        });
        common.transfers_sent += 1;
        common.send_slave(ctx, order.to, msg);
    }
    common.move_cost_sample = Some((total, ctx.now().saturating_since(t0)));
}

fn incorporate(common: &mut SlaveCommon, st: &mut State, t: TransferMsg, k: usize) {
    common.received_from[t.from] += 1;
    for mu in t.units {
        assert!(mu.id > k, "inactive column {} moved", mu.id);
        // `updated_through` is only meaningful when the column is done for
        // the tagged step (it is >= k >= 0). An undone column is exactly one
        // step behind — per-step settlement guarantees it was updated
        // through k-1 (which may be -1 at step 0 and is not representable
        // in the wire field).
        let ut = if mu.done {
            (mu.updated_through as i64).min(k as i64)
        } else {
            k as i64 - 1
        };
        let mut data: UnitData = mu.data;
        let prev = st.active.insert(
            mu.id,
            SCol {
                data: data.swap_remove(0),
                updated_through: ut,
            },
        );
        assert!(prev.is_none(), "column {} duplicated by move", mu.id);
    }
}

fn drain_transfers(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn ShrinkingKernel,
    k: usize,
) -> Result<(), ProtocolError> {
    let _ = kernel;
    while let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Transfer(_))) {
        if let Msg::Transfer(t) = env.msg {
            incorporate(common, st, t, k);
        }
    }
    // Also bank any pivot broadcasts that raced ahead (idempotent under
    // duplicated deliveries).
    while let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Pivot { .. })) {
        if let Msg::Pivot { step, values } = env.msg {
            st.pivots[step as usize] = Some(values);
        }
    }
    if common.ft.is_some() {
        if let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Abort | Msg::Evict)) {
            return match env.msg {
                Msg::Abort => Err(ProtocolError::Aborted),
                _ => Err(ProtocolError::Evicted { slave: common.idx }),
            };
        }
    }
    Ok(())
}

fn barrier(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn ShrinkingKernel,
    k: u64,
    is_final: bool,
) -> Result<(), ProtocolError> {
    let send_done = |ctx: &ActorCtx<Msg>, common: &mut SlaveCommon| {
        let msg = Msg::InvocationDone {
            slave: common.idx,
            invocation: k,
            transfers_sent: common.transfers_sent,
            received_from: common.received_from.clone(),
            metric: 0.0,
            restore_seq: 0,
        };
        common.send_master(ctx, msg);
    };
    send_done(ctx, common);
    let fault_mode = common.ft.is_some();
    let mut silent = 0u32;
    loop {
        let env = match common.ft.clone() {
            None => common.recv_blocking(ctx, |_| true, "step barrier")?,
            Some(ft) => match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
                Some(env) => {
                    silent = 0;
                    env
                }
                None => {
                    silent += 1;
                    if silent > ft.give_up_tries {
                        return Err(ProtocolError::Timeout {
                            who: crate::error::slave_who(common.idx),
                            waiting_for: "step barrier",
                            at: ctx.now(),
                        });
                    }
                    send_done(ctx, common);
                    continue;
                }
            },
        };
        match env.msg {
            Msg::Transfer(t) => {
                incorporate(common, st, t, k as usize);
                // Arrivals may still need this step's update.
                loop {
                    let next = st
                        .active
                        .iter()
                        .find(|(_, c)| c.updated_through < k as i64)
                        .map(|(&id, _)| id);
                    let Some(j) = next else { break };
                    update_column(ctx, common, st, kernel, j, k as usize)?;
                }
                let active = st.active.len() as u64;
                let moves = common.fire(ctx, k, active)?;
                execute_moves(ctx, common, st, k as usize, moves);
                send_done(ctx, common);
            }
            Msg::Pivot { step, values } => {
                st.pivots[step as usize] = Some(values);
            }
            Msg::Instructions(instr) => {
                // Safe at any barrier: the master cannot settle until the
                // transfers are acknowledged.
                if !instr.moves.is_empty() {
                    execute_moves(ctx, common, st, k as usize, instr.moves);
                    send_done(ctx, common);
                }
            }
            Msg::InvocationStart { invocation } => {
                if invocation == k + 1 && !is_final {
                    return Ok(());
                }
                if fault_mode && invocation <= k {
                    // Stale duplicate of an earlier release.
                    continue;
                }
                return Err(common.unexpected("step barrier", &Msg::InvocationStart { invocation }));
            }
            Msg::Gather => {
                if is_final {
                    return Ok(());
                }
                return Err(common.unexpected("step barrier", &Msg::Gather));
            }
            Msg::Abort => return Err(ProtocolError::Aborted),
            Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
            Msg::Start { .. } | Msg::GatherAck if fault_mode => {} // duplicate deliveries
            other => return Err(common.unexpected("step barrier", &other)),
        }
    }
}
