//! Slave engine for shrinking distributed loops (LU-shaped programs, §4.7).
//!
//! At step `k` the owner of column `k` finalizes it, broadcasts its pivot
//! payload to every other slave, and retires it — data slices with no
//! future work become *inactive* and are never moved by the balancer. All
//! slaves then update their active columns (`j > k`). Work movement is
//! direct (no carried dependences) and only ships active columns; a column
//! arriving one step behind is caught up with the retained pivot history.
//!
//! Under fault injection this engine is *checkpointed*: at every step
//! barrier each slave ships its full local state (retired and active
//! columns) to the master ([`Msg::Checkpoint`], best-effort). When a slave
//! dies or wedges, the master rolls every survivor back to the latest
//! complete snapshot ([`Msg::Rollback`]): the slave discards its engine
//! state, adopts the re-partitioned columns — ids below the resumed step
//! are retired, the rest are active and updated through the previous step —
//! and resumes in a new epoch. Pivot payloads are pure functions of
//! step-start state, so pivot broadcasts surviving from before the
//! rollback are bit-identical to their replayed versions; transfers and
//! balancing instructions are epoch-fenced.

use crate::balancer::InteractionMode;
use crate::error::{slave_who, FaultToleranceConfig, ProtocolError};
use crate::kernels::ShrinkingKernel;
use crate::msg::{Edge, MoveOrder, MovedUnit, Msg, TransferMsg, UnitData};
use crate::slave_common::{recv_start, RollbackInfo, SlaveCommon};
use dlb_sim::{ActorCtx, ActorId, CpuWork};
use std::collections::BTreeMap;
use std::sync::Arc;

struct SCol {
    data: Vec<f64>,
    /// Highest step whose update has been applied (-1 = none).
    updated_through: i64,
}

/// Static configuration for one shrinking-engine slave.
pub struct ShrinkingSlave {
    pub idx: usize,
    pub master: ActorId,
    pub mode: InteractionMode,
    pub hook_check_cpu: CpuWork,
    pub kernel: Arc<dyn ShrinkingKernel>,
    pub ft: Option<FaultToleranceConfig>,
}

struct State {
    active: BTreeMap<usize, SCol>,
    retired: Vec<(usize, Vec<f64>)>,
    pivots: Vec<Option<Vec<f64>>>,
}

impl ShrinkingSlave {
    /// Actor body. Never panics on protocol trouble: fatal errors are
    /// shipped to the master as [`Msg::SlaveError`].
    pub fn run(self, ctx: ActorCtx<Msg>) {
        let (idx, master) = (self.idx, self.master);
        match self.run_inner(&ctx) {
            Ok(()) | Err(ProtocolError::Aborted) | Err(ProtocolError::Evicted { .. }) => {}
            Err(error) => {
                let msg = Msg::SlaveError { slave: idx, error };
                let bytes = msg.wire_bytes();
                ctx.send(master, msg, bytes);
            }
        }
    }

    fn run_inner(self, ctx: &ActorCtx<Msg>) -> Result<(), ProtocolError> {
        let (slaves, assignment, _block_rows) = recv_start(ctx, self.idx, self.ft.as_ref())?;
        let range = assignment[self.idx];
        let kernel = self.kernel;
        let n = kernel.n_units();
        let mut common = SlaveCommon::new(
            self.idx,
            self.master,
            slaves,
            self.mode,
            self.hook_check_cpu,
            self.ft.clone(),
            ctx.now(),
        );
        let mut st = State {
            active: (range.0..range.1)
                .map(|i| {
                    (
                        i,
                        SCol {
                            data: kernel.init_unit(i),
                            updated_through: -1,
                        },
                    )
                })
                .collect(),
            retired: Vec::new(),
            pivots: vec![None; n],
        };

        let steps = (n as u64).saturating_sub(1);
        let mut start_step = 0u64;
        let mut need_release = true;
        loop {
            // The gather reply lives *inside* the restart loop: a peer can
            // die while the master is collecting results, and the resulting
            // rollback must re-run the lost steps on the survivors.
            let result = run_steps(
                ctx,
                &mut common,
                &mut st,
                &*kernel,
                start_step,
                steps,
                need_release,
            )
            .and_then(|()| reply_gather(ctx, &mut common, &st));
            match result {
                Ok(()) => return Ok(()),
                Err(ProtocolError::RolledBack) => {}
                Err(e) if common.ft.is_some() && recoverable(&e) => {
                    let msg = Msg::SlaveError {
                        slave: common.idx,
                        error: e,
                    };
                    common.send_master(ctx, msg);
                    rescue_wait(ctx, &mut common)?;
                }
                Err(e) => return Err(e),
            }
            let rb = common
                .pending_rollback
                .take()
                .ok_or_else(|| ProtocolError::Inconsistent {
                    detail: format!(
                        "slave {}: rollback unwound with no pending payload",
                        common.idx
                    ),
                })?;
            start_step = apply_rollback(&mut common, &mut st, rb, n)?;
            need_release = false;
        }
    }
}

/// Errors a checkpointed slave reports and survives (by rollback) instead
/// of dying from.
fn recoverable(e: &ProtocolError) -> bool {
    matches!(
        e,
        ProtocolError::Timeout { .. }
            | ProtocolError::MissingPivot { .. }
            | ProtocolError::Inconsistent { .. }
            | ProtocolError::UnexpectedMessage { .. }
    )
}

/// After shipping a `SlaveError`, wait for the master's rollback (stashed in
/// `pending_rollback`), an abort, or an eviction.
fn rescue_wait(ctx: &ActorCtx<Msg>, common: &mut SlaveCommon) -> Result<(), ProtocolError> {
    let ft = common.ft.clone().expect("rescue_wait requires fault mode");
    let mut tries = 0u32;
    loop {
        match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
            None => {
                tries += 1;
                if tries > ft.give_up_tries {
                    return Err(ProtocolError::Timeout {
                        who: slave_who(common.idx),
                        waiting_for: "rescue rollback",
                        at: ctx.now(),
                    });
                }
            }
            Some(env) => match env.msg {
                Msg::Abort => return Err(ProtocolError::Aborted),
                Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
                m => {
                    if let Err(ProtocolError::RolledBack) = common.control(&m) {
                        return Ok(());
                    }
                    // anything else is stale traffic of the torn epoch — ignore
                }
            },
        }
    }
}

/// Adopt a rollback: ids below the resumed step are retired (their data is
/// final), the rest are active and updated through the previous step.
fn apply_rollback(
    common: &mut SlaveCommon,
    st: &mut State,
    rb: RollbackInfo,
    n: usize,
) -> Result<u64, ProtocolError> {
    if !rb.survivors.contains(&common.idx) {
        return Err(ProtocolError::Evicted { slave: common.idx });
    }
    for s in 0..common.dead.len() {
        common.dead[s] = !rb.survivors.contains(&s);
    }
    common.reclaimed.clear();
    common.own_report_due.clear();
    common.rebase_epoch(rb.epoch);
    let k = rb.invocation;
    st.active.clear();
    st.retired.clear();
    st.pivots = vec![None; n];
    for (id, mut d) in rb.units {
        let data = if d.is_empty() {
            Vec::new()
        } else {
            d.swap_remove(0)
        };
        if (id as u64) < k {
            st.retired.push((id, data));
        } else {
            st.active.insert(
                id,
                SCol {
                    data,
                    updated_through: k as i64 - 1,
                },
            );
        }
    }
    Ok(k)
}

/// The main step loop, from `start_step` to completion (ends by consuming
/// the final `Gather`). Unwinds with `RolledBack` whenever a rollback
/// arrives.
fn run_steps(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn ShrinkingKernel,
    start_step: u64,
    steps: u64,
    need_release: bool,
) -> Result<(), ProtocolError> {
    if need_release {
        // Initial release (later steps are released by the barrier).
        loop {
            let env = common.recv_blocking(
                ctx,
                |m| matches!(m, Msg::InvocationStart { .. } | Msg::Instructions(_)),
                "first step start",
            )?;
            match env.msg {
                Msg::InvocationStart { invocation: 0 } => break,
                Msg::InvocationStart { invocation } => {
                    return Err(common.unexpected(
                        "waiting for first step",
                        &Msg::InvocationStart { invocation },
                    ));
                }
                Msg::Instructions(_) => {}
                _ => unreachable!(),
            }
        }
    }

    for k in start_step..steps {
        step(ctx, common, st, kernel, k as usize)?;
        // Flush the final partial period (and execute any late moves)
        // before reporting the step done.
        drain_transfers(ctx, common, st, kernel, k as usize)?;
        let moves = common.fire(ctx, k, st.active.len() as u64)?;
        execute_moves(ctx, common, st, k as usize, moves)?;
        barrier(ctx, common, st, kernel, k, k + 1 == steps)?;
    }
    Ok(())
}

fn step(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn ShrinkingKernel,
    k: usize,
) -> Result<(), ProtocolError> {
    // Pivot phase: the owner finalizes and broadcasts column k.
    if let Some(col) = st.active.remove(&k) {
        if col.updated_through != k as i64 - 1 {
            return Err(ProtocolError::Inconsistent {
                detail: format!(
                    "slave {}: pivot column {k} updated through {} at step {k}",
                    common.idx, col.updated_through
                ),
            });
        }
        let payload = kernel.pivot_payload(k, &col.data);
        for to in 0..common.slaves.len() {
            if to != common.idx && !common.dead[to] {
                let msg = Msg::Pivot {
                    step: k as u64,
                    values: payload.clone(),
                };
                common.send_slave(ctx, to, msg);
            }
        }
        st.pivots[k] = Some(payload);
        st.retired.push((k, col.data));
    } else if st.pivots[k].is_none() {
        let want = k as u64;
        let env = common.recv_blocking(
            ctx,
            |m| matches!(m, Msg::Pivot { step, .. } if *step == want),
            "pivot broadcast",
        )?;
        if let Msg::Pivot { values, .. } = env.msg {
            st.pivots[k] = Some(values);
        }
    }

    // Update phase: bring every active column through step k, hooking after
    // each column update.
    loop {
        drain_transfers(ctx, common, st, kernel, k)?;
        let next = st
            .active
            .iter()
            .find(|(_, c)| c.updated_through < k as i64)
            .map(|(&id, _)| id);
        let Some(j) = next else { break };
        update_column(ctx, common, st, kernel, j, k)?;
        let active = st.active.len() as u64;
        let moves = common.hook(ctx, k as u64, active)?;
        execute_moves(ctx, common, st, k, moves)?;
    }
    Ok(())
}

fn update_column(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn ShrinkingKernel,
    j: usize,
    k: usize,
) -> Result<(), ProtocolError> {
    let col = st.active.get_mut(&j).expect("column present");
    let from = (col.updated_through + 1) as usize;
    for kk in from..=k {
        let Some(pivot) = st.pivots[kk].as_ref() else {
            // A caught-up column needs pivot history the protocol should
            // have delivered; its absence means a lost broadcast (or a
            // runtime bug) — either way the step cannot proceed.
            return Err(ProtocolError::MissingPivot {
                step: kk,
                column: j,
                slave: common.idx,
            });
        };
        common.compute(ctx, kernel.step_cost(kk));
        kernel.update(j, &mut col.data, pivot, kk);
        col.updated_through = kk as i64;
        common.record_done(1);
    }
    Ok(())
}

fn execute_moves(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    k: usize,
    moves: Vec<MoveOrder>,
) -> Result<(), ProtocolError> {
    if moves.is_empty() {
        return Ok(());
    }
    let t0 = ctx.now();
    let mut total = 0u64;
    for order in moves {
        if common.dead[order.to] {
            // Planned before the peer's death reached the master.
            continue;
        }
        let take = (order.count as usize).min(st.active.len());
        let ids: Vec<usize> = match order.edge {
            Edge::High => st.active.keys().rev().take(take).copied().collect(),
            Edge::Low => st.active.keys().take(take).copied().collect(),
        };
        let units: Vec<MovedUnit> = ids
            .into_iter()
            .map(|id| {
                let c = st.active.remove(&id).expect("picked id");
                MovedUnit {
                    id,
                    done: c.updated_through >= k as i64,
                    updated_through: c.updated_through.max(0) as u64,
                    data: vec![c.data],
                    old: None,
                }
            })
            .collect();
        total += units.len() as u64;
        let from = common.idx;
        common.send_transfer(ctx, order.to, |_| TransferMsg {
            from,
            seq: 0,
            epoch: 0,
            invocation: k as u64,
            effective_block: 0,
            units,
            right_old: None,
        });
    }
    common.move_cost_sample = Some((total, ctx.now().saturating_since(t0)));
    Ok(())
}

fn incorporate(
    common: &mut SlaveCommon,
    st: &mut State,
    t: TransferMsg,
    k: usize,
) -> Result<(), ProtocolError> {
    for mu in t.units {
        if mu.id <= k {
            return Err(ProtocolError::Inconsistent {
                detail: format!("slave {}: inactive column {} moved", common.idx, mu.id),
            });
        }
        // `updated_through` is only meaningful when the column is done for
        // the tagged step (it is >= k >= 0). An undone column is exactly one
        // step behind — per-step settlement guarantees it was updated
        // through k-1 (which may be -1 at step 0 and is not representable
        // in the wire field).
        let ut = if mu.done {
            (mu.updated_through as i64).min(k as i64)
        } else {
            k as i64 - 1
        };
        let mut data: UnitData = mu.data;
        let prev = st.active.insert(
            mu.id,
            SCol {
                data: if data.is_empty() {
                    Vec::new()
                } else {
                    data.swap_remove(0)
                },
                updated_through: ut,
            },
        );
        if prev.is_some() {
            return Err(ProtocolError::Inconsistent {
                detail: format!("slave {}: column {} duplicated by move", common.idx, mu.id),
            });
        }
    }
    Ok(())
}

fn drain_transfers(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn ShrinkingKernel,
    k: usize,
) -> Result<(), ProtocolError> {
    let _ = kernel;
    common.drain_control(ctx)?;
    while let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Transfer(_))) {
        if let Msg::Transfer(t) = env.msg {
            if common.accept_transfer(ctx, &t) {
                incorporate(common, st, t, k)?;
            }
        }
    }
    // Also bank any pivot broadcasts that raced ahead (idempotent under
    // duplicated deliveries; pivot payloads are value-deterministic, so
    // even pre-rollback stragglers are safe to bank).
    while let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Pivot { .. })) {
        if let Msg::Pivot { step, values } = env.msg {
            st.pivots[step as usize] = Some(values);
        }
    }
    if common.ft.is_some() {
        if let Some(env) = ctx.try_recv_match(|m| matches!(m, Msg::Abort | Msg::Evict)) {
            return match env.msg {
                Msg::Abort => Err(ProtocolError::Aborted),
                _ => Err(ProtocolError::Evicted { slave: common.idx }),
            };
        }
    }
    Ok(())
}

fn send_done(ctx: &ActorCtx<Msg>, common: &mut SlaveCommon, st: &State, k: u64) {
    let mut owned: Vec<usize> = st.retired.iter().map(|(id, _)| *id).collect();
    owned.extend(st.active.keys().copied());
    let msg = Msg::InvocationDone {
        slave: common.idx,
        invocation: k,
        epoch: common.epoch,
        sent_to: common.sent_to_vec(),
        received_from: common.recv_watermarks(),
        metric: 0.0,
        restore_seq: common.master_chan.watermark(),
        owned_ids: owned,
    };
    common.send_master(ctx, msg);
}

/// Ship the step-barrier checkpoint: retired and active columns, i.e. the
/// state from which step `k + 1` starts. Best-effort.
fn send_checkpoint(ctx: &ActorCtx<Msg>, common: &mut SlaveCommon, st: &State, k: u64) {
    if common.ft.is_none() {
        return;
    }
    let mut units: Vec<(usize, UnitData)> = st
        .retired
        .iter()
        .map(|(id, data)| (*id, vec![data.clone()]))
        .collect();
    units.extend(st.active.iter().map(|(&id, c)| (id, vec![c.data.clone()])));
    let msg = Msg::Checkpoint {
        slave: common.idx,
        invocation: k + 1,
        units,
    };
    common.fault_stats.checkpoints_sent += 1;
    common.send_master(ctx, msg);
}

fn barrier(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &mut State,
    kernel: &dyn ShrinkingKernel,
    k: u64,
    is_final: bool,
) -> Result<(), ProtocolError> {
    send_done(ctx, common, st, k);
    send_checkpoint(ctx, common, st, k);
    let fault_mode = common.ft.is_some();
    let mut silent = 0u32;
    loop {
        let env = match common.ft.clone() {
            None => common.recv_blocking(ctx, |_| true, "step barrier")?,
            Some(ft) => match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
                Some(env) => {
                    silent = 0;
                    env
                }
                None => {
                    silent += 1;
                    if silent > ft.give_up_tries {
                        return Err(ProtocolError::Timeout {
                            who: slave_who(common.idx),
                            waiting_for: "step barrier",
                            at: ctx.now(),
                        });
                    }
                    common.resend_stalled_transfers(ctx);
                    send_done(ctx, common, st, k);
                    send_checkpoint(ctx, common, st, k);
                    continue;
                }
            },
        };
        match env.msg {
            Msg::Transfer(t) => {
                if common.accept_transfer(ctx, &t) {
                    incorporate(common, st, t, k as usize)?;
                    // Arrivals may still need this step's update.
                    loop {
                        let next = st
                            .active
                            .iter()
                            .find(|(_, c)| c.updated_through < k as i64)
                            .map(|(&id, _)| id);
                        let Some(j) = next else { break };
                        update_column(ctx, common, st, kernel, j, k as usize)?;
                    }
                    let active = st.active.len() as u64;
                    let moves = common.fire(ctx, k, active)?;
                    execute_moves(ctx, common, st, k as usize, moves)?;
                }
                send_done(ctx, common, st, k);
                send_checkpoint(ctx, common, st, k);
            }
            Msg::Pivot { step, values } => {
                st.pivots[step as usize] = Some(values);
            }
            Msg::Instructions(instr) => {
                // Safe at any barrier: the master cannot settle until the
                // transfers are acknowledged. Routed through the shared
                // epoch/sequence fences so a duplicated delivery cannot
                // double-execute the moves.
                let moves = common.instructions_out_of_band(instr);
                if !moves.is_empty() {
                    execute_moves(ctx, common, st, k as usize, moves)?;
                    send_done(ctx, common, st, k);
                    send_checkpoint(ctx, common, st, k);
                }
            }
            Msg::InvocationStart { invocation } => {
                if invocation == k + 1 && !is_final {
                    return Ok(());
                }
                if fault_mode && invocation <= k {
                    // Stale duplicate of an earlier release.
                    continue;
                }
                return Err(common.unexpected("step barrier", &Msg::InvocationStart { invocation }));
            }
            Msg::Gather => {
                if is_final {
                    return Ok(());
                }
                return Err(common.unexpected("step barrier", &Msg::Gather));
            }
            Msg::Abort => return Err(ProtocolError::Aborted),
            Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
            Msg::Start { .. } | Msg::GatherAck if fault_mode => {} // duplicate deliveries
            m @ (Msg::TransferAck { .. } | Msg::Evicted { .. } | Msg::Rollback { .. }) => {
                common.control(&m)?;
            }
            other => return Err(common.unexpected("step barrier", &other)),
        }
    }
}

/// The final barrier consumed the Gather message; reply with all columns.
/// In fault mode, wait for the master's acknowledgement (re-sending on
/// duplicate `Gather` requests) so a dropped reply cannot lose the result.
fn reply_gather(
    ctx: &ActorCtx<Msg>,
    common: &mut SlaveCommon,
    st: &State,
) -> Result<(), ProtocolError> {
    let mut payload: Vec<(usize, UnitData)> = st
        .retired
        .iter()
        .map(|(id, data)| (*id, vec![data.clone()]))
        .collect();
    payload.extend(st.active.iter().map(|(&id, c)| (id, vec![c.data.clone()])));
    let msg = Msg::GatherData {
        slave: common.idx,
        units: payload.clone(),
        fault_stats: common.fault_stats.clone(),
    };
    common.send_master(ctx, msg);
    let Some(ft) = common.ft.clone() else {
        return Ok(());
    };
    let mut tries = 0u32;
    loop {
        match ctx.recv_deadline(ctx.now() + ft.slave_heartbeat) {
            None => {
                tries += 1;
                if tries > ft.gather_patience {
                    // Assume the data arrived and the ack was lost.
                    return Ok(());
                }
            }
            Some(env) => match env.msg {
                Msg::Gather => {
                    tries = 0;
                    let msg = Msg::GatherData {
                        slave: common.idx,
                        units: payload.clone(),
                        fault_stats: common.fault_stats.clone(),
                    };
                    common.send_master(ctx, msg);
                }
                Msg::GatherAck | Msg::Abort => return Ok(()),
                Msg::Evict => return Err(ProtocolError::Evicted { slave: common.idx }),
                // A peer died while the master was collecting results: the
                // rollback unwinds through the shared control path so the
                // restart loop re-runs the lost steps.
                m @ (Msg::TransferAck { .. } | Msg::Evicted { .. } | Msg::Rollback { .. }) => {
                    common.control(&m)?;
                }
                _ => {} // stale traffic
            },
        }
    }
}
