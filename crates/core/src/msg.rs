//! The runtime's message vocabulary.
//!
//! One message enum covers all three execution engines (independent,
//! pipelined, shrinking). Messages carry *real application data* — moved
//! work units contain the actual array slices, boundary messages the actual
//! halo values — so the runtime's gather/scatter and pipeline catch-up
//! logic is exercised for real and results can be verified bit-for-bit
//! against sequential execution.

use crate::recovery::{RecoveryStats, SlaveFaultStats};
use dlb_sim::SimDuration;

/// The per-unit application payload: one `Vec<f64>` per moved array (in the
/// order given by the compiler's `MovedArray` descriptors). For MM a unit is
/// `[a_row, c_row]`; for SOR `[b_column]`; for LU `[a_column]`.
pub type UnitData = Vec<Vec<f64>>;

/// Which end of a slave's contiguous block a move takes units from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edge {
    /// Lowest-indexed units.
    Low,
    /// Highest-indexed units.
    High,
}

/// One work-movement order: the addressed slave sends `count` units to
/// slave `to`, taking them from the given `edge` of its local block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MoveOrder {
    pub to: usize,
    pub count: u64,
    pub edge: Edge,
}

/// Master → slave balancing instructions.
#[derive(Clone, Debug, Default)]
pub struct Instructions {
    /// Monotone sequence number (per slave).
    pub seq: u64,
    /// Rollback epoch these orders were computed in. Instructions from an
    /// earlier epoch reference a work distribution that no longer exists
    /// and are discarded wholesale (zero outside the checkpointed engines).
    pub epoch: u64,
    /// Outgoing work movements this slave must perform.
    pub moves: Vec<MoveOrder>,
    /// How many hook instances to skip before the next status exchange
    /// (§4.3: computed from the target balancing period and predicted
    /// computation rate).
    pub hooks_to_skip: u64,
}

/// Slave → master status, sent at load-balancing hooks.
#[derive(Clone, Debug)]
pub struct Status {
    pub slave: usize,
    /// Invocation (outer-loop iteration / sweep / step) the slave is in.
    pub invocation: u64,
    /// Monotone per-slave hook-firing counter. Lets the master discard
    /// duplicated status messages under fault injection.
    pub hook_seq: u64,
    /// Work units completed since the previous status message.
    pub units_done_delta: u64,
    /// Elapsed virtual time since the previous status message.
    pub elapsed: SimDuration,
    /// Units this slave owns that still have future work (§4.7).
    pub active_units: u64,
    /// Highest instruction sequence number this slave has applied. Lets the
    /// master tell whether `active_units` already reflects the orders it
    /// issued earlier (unapplied orders must still be discounted).
    pub last_applied_seq: u64,
    /// Rollback epoch this slave is operating in (checkpointed engines).
    /// The master discards reports from earlier epochs.
    pub epoch: u64,
    /// Per-destination transfer-channel sequence counter: `sent_to[d]` is
    /// the highest transfer sequence this slave has allocated on its
    /// channel to slave `d`.
    pub sent_to: Vec<u64>,
    /// Per-source transfer-channel watermark: `received_from[s]` is the
    /// largest `k` such that every transfer `1..=k` from slave `s` has been
    /// applied here. Per-sender resolution lets the master match
    /// acknowledgements to the orders it issued even when transfers from
    /// different senders race, and the pair of counters settles each
    /// channel exactly (`sent_to[a][b] == received_from[b][a]`).
    pub received_from: Vec<u64>,
    /// Measured elapsed cost of the most recent work movement as
    /// `(units_moved, elapsed)`, if any (feeds the frequency controller's
    /// movement-cost bound and the per-unit movement estimate).
    pub move_cost_sample: Option<(u64, SimDuration)>,
    /// Measured elapsed cost of the previous hook's master interaction
    /// (feeds the frequency controller's interaction-cost bound).
    pub interaction_cost_sample: Option<SimDuration>,
}

/// One moved work unit with its iteration state.
#[derive(Clone, Debug)]
pub struct MovedUnit {
    /// Global unit index.
    pub id: usize,
    /// Independent engine: already computed in the tagged invocation.
    pub done: bool,
    /// Shrinking engine: the unit has been updated through this step.
    /// Pipelined engine: blocks completed this sweep (the unit's phase).
    pub updated_through: u64,
    /// The application data (one vector per moved array).
    pub data: UnitData,
    /// Pipelined engine: sweep-start snapshot of the unit's values (needed
    /// as the right halo of its left neighbour).
    pub old: Option<Vec<f64>>,
}

/// Slave → slave work transfer.
#[derive(Clone, Debug)]
pub struct TransferMsg {
    pub from: usize,
    /// Monotone per-channel (sender → receiver pair) sequence number. The
    /// receiver deduplicates by it and acknowledges with a contiguous
    /// watermark ([`Msg::TransferAck`]); the sender retains the transfer
    /// until acknowledged and re-sends it on silence.
    pub seq: u64,
    /// Rollback epoch the transfer was sent in. A transfer from another
    /// epoch is discarded without counting: after a rollback the old
    /// distribution no longer exists.
    pub epoch: u64,
    /// Invocation / sweep / step this transfer belongs to.
    pub invocation: u64,
    /// Pipelined engine: the sender's phase when the move takes effect; the
    /// receiver incorporates the columns when its own phase reaches this
    /// value (set-aside) or catches them up if it is already past (§4.5).
    pub effective_block: u64,
    pub units: Vec<MovedUnit>,
    /// Pipelined engine, right-to-left moves: sweep-start values of the
    /// sender's new first column, which becomes the receiver's right halo.
    pub right_old: Option<Vec<f64>>,
}

/// Master → deputy: a replica of the master's control-plane state, from
/// which an elected deputy can rebuild the session after the master dies.
/// Published at invocation barriers (cadence `replicate_every`) and re-sent
/// on the nudge timer to deputies whose confirmed snapshot lags the bank.
#[derive(Clone, Debug)]
pub struct ReplicaMsg {
    /// The publishing master's election term (0 = the original master).
    pub term: u64,
    /// Current rollback epoch.
    pub epoch: u64,
    /// Invocation the master is currently running/settling.
    pub invocation: u64,
    /// Checkpoint cadence in force.
    pub ckpt_stride: u64,
    /// Membership as the master believes it (`alive[i]` per slave).
    pub alive: Vec<bool>,
    /// Replica freshness: the invocation a takeover from this replica can
    /// resume at (the banked checkpoint's invocation for the checkpointed
    /// loop, the current invocation for the recoverable loop). Candidates
    /// advertise it; voters refuse staler candidates.
    pub fresh: u64,
    /// Newest complete checkpoint snapshot (checkpointed loop only), sent
    /// when this deputy has not yet confirmed holding it.
    pub snapshot: Option<(u64, Vec<(usize, UnitData)>)>,
    /// The newest complete checkpoint invocation in the master's bank —
    /// lets a promoted deputy count checkpoints lost to a stale replica.
    pub best_banked: u64,
    /// The master's cumulative recovery counters, so a takeover's final
    /// report covers the whole run, not just the post-failover part.
    pub recovery: RecoveryStats,
    /// Per-slave admission incarnations (see [`Msg::Join`]). Replicated so
    /// a promoted deputy keeps fencing a rejoiner's earlier life: without
    /// it the new master would refuse a live rejoiner's pings (wrongly
    /// re-evicting it) and credit its zombie's.
    pub incarnations: Vec<u64>,
}

/// All runtime messages.
#[derive(Clone, Debug)]
pub enum Msg {
    // ---- master -> slaves ----
    /// Initial assignment: per-slave `[lo, hi)` unit ranges, the actor ids
    /// of all slaves (for direct slave↔slave sends), and the pipelined
    /// block size chosen at startup.
    Start {
        slaves: Vec<dlb_sim::ActorId>,
        assignment: Vec<(usize, usize)>,
        block_rows: u64,
    },
    Instructions(Instructions),
    /// Barrier release: begin the given invocation (sweep / step / rep).
    /// `ckpt_stride` is the adaptive checkpoint cadence the master chose
    /// for the coming invocations: send a checkpoint only when the
    /// completed invocation number is a multiple of it (1 = every barrier;
    /// the default, and the only value outside the checkpointed engines).
    InvocationStart {
        invocation: u64,
        ckpt_stride: u64,
    },
    /// Request final data; slaves answer with `GatherData` and terminate.
    Gather,
    // ---- slave -> master ----
    Status(Status),
    /// The slave has no local work left in `invocation`. `metric` is the
    /// slave's accumulated convergence contribution for this invocation
    /// (cumulative; the master keeps the latest value per slave).
    InvocationDone {
        slave: usize,
        invocation: u64,
        /// Rollback epoch (checkpointed engines; zero elsewhere).
        epoch: u64,
        /// Per-destination transfer sequence counters (see [`Status`]).
        sent_to: Vec<u64>,
        /// Per-source transfer watermarks (see [`Status`]).
        received_from: Vec<u64>,
        metric: f64,
        /// Master-channel acknowledgement watermark: the largest `k` such
        /// that this slave has applied every windowed master message
        /// (`Restore` / `Rollback` / `Speculate` / `SpecCommit` /
        /// `SpecCancel`) with sequence `1..=k`. Zero when none were ever
        /// addressed to it.
        restore_seq: u64,
        /// Unit ids this slave currently owns — the master's (possibly
        /// stale) ownership map, which seeds speculative re-execution when
        /// this slave later falls silent.
        owned_ids: Vec<usize>,
        /// Deputy replica confirmation: the checkpoint generation this
        /// slave's replica could take over from (zero for non-deputies).
        /// Lets the master stop re-shipping snapshots a deputy holds.
        replica_inv: u64,
    },
    GatherData {
        slave: usize,
        units: Vec<(usize, UnitData)>,
        /// Slave-local fault-protocol counters, folded into
        /// [`crate::recovery::RecoveryStats`] at gather.
        fault_stats: SlaveFaultStats,
    },
    // ---- slave <-> slave ----
    Transfer(TransferMsg),
    /// Receiver → sender: contiguous applied watermark for the transfer
    /// channel `from → me`. Sent on every transfer delivery (fresh or
    /// duplicate), so a lost ack is repaired by the sender's re-send.
    TransferAck {
        /// The acknowledging slave (the transfer receiver).
        from: usize,
        /// Epoch the ack belongs to; stale-epoch acks are discarded.
        epoch: u64,
        /// Largest `k` such that transfers `1..=k` on this channel applied.
        watermark: u64,
    },
    /// Pipelined: new values of column `col` (the sender's last column)
    /// for one row block. Tagged with the column id so a receiver whose
    /// left neighbour changed mid-sweep never consumes stale halos.
    Boundary {
        sweep: u64,
        block: u64,
        col: usize,
        values: Vec<f64>,
    },
    /// Pipelined: sweep-start old values of the sender's first column
    /// (the receiver's right halo for the whole sweep). Tagged with the
    /// column id so a receiver whose right neighbour changed (movement or
    /// eviction) never adopts a halo for the wrong boundary.
    SweepOld {
        sweep: u64,
        col: usize,
        values: Vec<f64>,
    },
    /// Shrinking: the pivot unit's data for `step`, broadcast by its owner.
    Pivot {
        step: u64,
        values: Vec<f64>,
    },
    // ---- fault-tolerance protocol ----
    /// Master → slave: adopt these units of a dead slave. `invocation` is the
    /// current barrier; the receiver replays each unit's computation up to it.
    /// `seq` is a monotone per-destination counter acknowledged via
    /// `InvocationDone::restore_seq`; unacknowledged restores are re-sent, and
    /// the receiver deduplicates by sequence number.
    Restore {
        seq: u64,
        invocation: u64,
        units: Vec<(usize, UnitData)>,
    },
    /// Master → slave: you were declared dead; terminate quietly. Protects a
    /// falsely-suspected slave from double-computing units that were already
    /// re-scattered to survivors.
    Evict,
    /// Master → survivors: the named peer was declared dead. Each survivor
    /// closes its transfer channels with the peer (re-owning in-flight
    /// units) and answers with an [`Msg::OwnReport`]; re-sent on the nudge
    /// timer until the report arrives.
    Evicted {
        slave: usize,
    },
    /// Survivor → master: authoritative unit ownership after fencing off
    /// the named dead peer. The master restores exactly the units no
    /// survivor reports.
    OwnReport {
        slave: usize,
        /// Which eviction this report answers.
        about: usize,
        ids: Vec<usize>,
    },
    /// Slave → master (checkpointed engines): full local state at the
    /// barrier that completed invocation `invocation - 1` — i.e. the state
    /// from which invocation `invocation` starts. Best-effort: a dropped
    /// checkpoint only means a deeper rollback.
    Checkpoint {
        slave: usize,
        invocation: u64,
        units: Vec<(usize, UnitData)>,
    },
    /// Master → slave (checkpointed engines): discard all engine state,
    /// adopt these units, and resume computing from invocation
    /// `invocation` in the given epoch with the given surviving peers.
    /// Windowed like `Restore` (acknowledged via
    /// `InvocationDone::restore_seq`).
    Rollback {
        seq: u64,
        epoch: u64,
        invocation: u64,
        /// Live slave indices, ascending — the receiver derives its
        /// pipeline neighbours from its position in this list.
        survivors: Vec<usize>,
        /// Checkpoint cadence in force after the restart (see
        /// [`Msg::InvocationStart`]).
        ckpt_stride: u64,
        units: Vec<(usize, UnitData)>,
    },
    /// Master → idle survivor: speculatively re-execute a silent suspect's
    /// work, holding the results aside until the master commits or
    /// cancels. For the independent engine `units` are the suspect's units
    /// to recompute in `invocation`; for the checkpointed engines `units`
    /// are the full banked snapshot of invocation `invocation`, which the
    /// survivor advances by one invocation and returns as a
    /// [`Msg::Checkpoint`] for `invocation + 1`. Windowed like `Restore`.
    Speculate {
        seq: u64,
        invocation: u64,
        units: Vec<(usize, UnitData)>,
    },
    /// Master → survivor: the suspect was evicted — adopt the named units
    /// from the speculation buffer of `spec_seq` and drop the rest.
    SpecCommit {
        seq: u64,
        spec_seq: u64,
        ids: Vec<usize>,
    },
    /// Master → survivor: the suspect spoke again — drop the speculation
    /// buffer of `spec_seq` entirely.
    SpecCancel {
        seq: u64,
        spec_seq: u64,
    },
    /// Slave → master (fault mode): pure liveness ping. Sent while a slave
    /// is blocked waiting on a *peer* (e.g. a pipeline halo from a crashed
    /// neighbour) and therefore has no protocol message of its own to
    /// re-send. Refreshes the master's suspicion timer and cancels any
    /// speculation on the sender; carries no other state. `incarnation` is
    /// the sender's admission incarnation (see [`Msg::Join`]): the master
    /// credits the ping only when it matches its membership table, so a
    /// delayed or duplicated ping from a rejoiner's *earlier* life cannot
    /// keep the new life looking alive (zombie fencing).
    Alive {
        slave: usize,
        incarnation: u64,
    },
    // ---- elastic membership ----
    /// Slave → master: admission request — a newcomer joining mid-run, or a
    /// previously evicted slave rejoining after a heal. `incarnation` is
    /// the proposed admission incarnation (one past the joiner's previous
    /// life; newcomers propose 1). The master queues the request and admits
    /// at the next settled barrier with an epoch-bumping windowed
    /// re-scatter ([`Msg::Rollback`]); the Rollback doubles as the
    /// admission acknowledgement. Re-sent under the joiner's bounded
    /// backoff until admitted or refused.
    Join {
        slave: usize,
        incarnation: u64,
    },
    /// Master → joiner: the admission request was refused (the run is
    /// gathering, finished, or the proposal was stale). The joiner backs
    /// off and retries until its attempt budget runs out
    /// ([`crate::error::ProtocolError::JoinRefused`]).
    JoinRefuse {
        slave: usize,
    },
    /// Master → slaves: the run failed; terminate quietly.
    Abort,
    /// Slave → master: fatal protocol error; the run cannot continue.
    SlaveError {
        slave: usize,
        error: crate::error::ProtocolError,
    },
    /// Master → slave: your `GatherData` arrived; safe to terminate.
    GatherAck,
    // ---- master failover ----
    /// Master → deputy: control-plane replication (see [`ReplicaMsg`]).
    /// Counts as protocol traffic for the deputy's master-silence clock.
    Replica(Box<ReplicaMsg>),
    /// Master → deputies: pure liveness ping, the master-side analogue of
    /// [`Msg::Alive`]. Defers the deputies' election trigger without
    /// carrying replica state (ping clock, not the heard clock).
    MasterPing {
        term: u64,
    },
    /// Deputy → deputies: the sender stands for master in `term`. `fresh`
    /// advertises its replica's freshness; voters with a fresher replica
    /// refuse, so the winner holds the newest replica in its quorum.
    Candidacy {
        term: u64,
        candidate: usize,
        fresh: u64,
    },
    /// Deputy → candidate: vote grant for `term`. A deputy votes at most
    /// once per term, which makes the election winner unique per term.
    Vote {
        term: u64,
        voter: usize,
        candidate: usize,
    },
    /// Election winner → everyone (slaves and the old master): slave
    /// `master_idx` is the master for `term`. Receivers redirect their
    /// master channel; a superseded master exits silently.
    Promoted {
        term: u64,
        master_idx: usize,
    },
}

impl Msg {
    /// Approximate wire size in bytes, used to charge the network model.
    pub fn wire_bytes(&self) -> u64 {
        const HDR: u64 = 32;
        let f64s = |v: &Vec<f64>| 8 * v.len() as u64;
        let unit_list = |units: &Vec<(usize, UnitData)>| {
            units
                .iter()
                .map(|(_, d)| 8 + d.iter().map(f64s).sum::<u64>())
                .sum::<u64>()
        };
        match self {
            Msg::Start { assignment, .. } => HDR + 16 * assignment.len() as u64,
            Msg::Instructions(i) => HDR + 24 * i.moves.len() as u64,
            Msg::InvocationStart { .. } => HDR + 8,
            Msg::Gather => HDR,
            Msg::InvocationDone {
                sent_to,
                received_from,
                owned_ids,
                ..
            } => HDR + 8 * (sent_to.len() + received_from.len() + owned_ids.len()) as u64,
            Msg::Status(st) => HDR + 64 + 8 * (st.sent_to.len() + st.received_from.len()) as u64,
            Msg::GatherData { units, .. } => HDR + 48 + unit_list(units),
            Msg::Transfer(t) => {
                HDR + t.right_old.as_ref().map(f64s).unwrap_or(0)
                    + t.units
                        .iter()
                        .map(|u| {
                            24 + u.data.iter().map(f64s).sum::<u64>()
                                + u.old.as_ref().map(f64s).unwrap_or(0)
                        })
                        .sum::<u64>()
            }
            Msg::Boundary { values, .. }
            | Msg::SweepOld { values, .. }
            | Msg::Pivot { values, .. } => HDR + f64s(values),
            Msg::Restore { units, .. }
            | Msg::Checkpoint { units, .. }
            | Msg::Speculate { units, .. } => HDR + unit_list(units),
            Msg::Rollback {
                survivors, units, ..
            } => HDR + 8 * survivors.len() as u64 + unit_list(units),
            Msg::OwnReport { ids, .. } | Msg::SpecCommit { ids, .. } => HDR + 8 * ids.len() as u64,
            Msg::Evict
            | Msg::Evicted { .. }
            | Msg::Abort
            | Msg::GatherAck
            | Msg::TransferAck { .. }
            | Msg::SpecCancel { .. } => HDR,
            Msg::Alive { .. } | Msg::JoinRefuse { .. } => HDR + 8,
            Msg::Join { .. } => HDR + 16,
            Msg::SlaveError { error, .. } => HDR + 8 + error.payload_bytes(),
            Msg::Replica(r) => {
                // Fixed scalars + membership bitmap + incarnation table +
                // counters block + the snapshot payload when one rides along.
                HDR + 48
                    + r.alive.len() as u64
                    + 8 * r.incarnations.len() as u64
                    + RecoveryStats::WIRE_BYTES
                    + r.snapshot
                        .as_ref()
                        .map(|(_, units)| 8 + unit_list(units))
                        .unwrap_or(0)
            }
            Msg::MasterPing { .. } => HDR + 8,
            Msg::Promoted { .. } => HDR + 16,
            Msg::Candidacy { .. } | Msg::Vote { .. } => HDR + 24,
        }
    }

    /// Stable trace tag for the event-trace format (`DLB_TRACE_EVENTS`,
    /// [`dlb_sim::SimBuilder::record_trace`]). Only the election messages
    /// are tagged — they are what `dlb-lint --conform` replays through
    /// [`crate::session::model::ElectionModel`]; everything else traces
    /// untagged. The key=value grammar here is part of the trace format:
    /// changing it breaks recorded traces.
    pub fn trace_tag(&self) -> Option<String> {
        match self {
            Msg::Candidacy {
                term,
                candidate,
                fresh,
            } => Some(format!(
                "candidacy term={term} cand={candidate} fresh={fresh}"
            )),
            Msg::Vote {
                term,
                voter,
                candidate,
            } => Some(format!("vote term={term} voter={voter} cand={candidate}")),
            Msg::Promoted { term, master_idx } => {
                Some(format!("promoted term={term} winner={master_idx}"))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_scale_with_payload() {
        let small = Msg::Boundary {
            sweep: 0,
            block: 0,
            col: 0,
            values: vec![0.0; 10],
        };
        let big = Msg::Boundary {
            sweep: 0,
            block: 0,
            col: 0,
            values: vec![0.0; 1000],
        };
        assert_eq!(small.wire_bytes(), 32 + 80);
        assert_eq!(big.wire_bytes(), 32 + 8000);
    }

    #[test]
    fn transfer_counts_all_unit_arrays() {
        let t = Msg::Transfer(TransferMsg {
            from: 0,
            seq: 1,
            epoch: 0,
            invocation: 0,
            effective_block: 0,
            units: vec![MovedUnit {
                id: 3,
                done: false,
                updated_through: 0,
                data: vec![vec![0.0; 100], vec![0.0; 100]],
                old: Some(vec![0.0; 100]),
            }],
            right_old: None,
        });
        assert_eq!(t.wire_bytes(), 32 + 24 + 3 * 800);
    }

    #[test]
    fn control_messages_are_small() {
        assert!(Msg::Gather.wire_bytes() < 64);
        assert!(
            Msg::Status(Status {
                slave: 0,
                invocation: 0,
                hook_seq: 0,
                units_done_delta: 0,
                elapsed: SimDuration::ZERO,
                active_units: 0,
                last_applied_seq: 0,
                epoch: 0,
                sent_to: Vec::new(),
                received_from: Vec::new(),
                move_cost_sample: None,
                interaction_cost_sample: None,
            })
            .wire_bytes()
                < 128
        );
    }

    #[test]
    fn slave_error_wire_cost_tracks_its_payload() {
        use crate::error::ProtocolError;
        // The old flat `HDR + 64` estimate undercounted long diagnostics;
        // the cost now follows the carried error's actual payload.
        let small = Msg::SlaveError {
            slave: 0,
            error: ProtocolError::Aborted,
        };
        let detail = "x".repeat(500);
        let big = Msg::SlaveError {
            slave: 0,
            error: ProtocolError::Inconsistent {
                detail: detail.clone(),
            },
        };
        assert!(small.wire_bytes() < 32 + 64);
        assert!(
            big.wire_bytes() >= 32 + detail.len() as u64,
            "long diagnostics must be charged: {}",
            big.wire_bytes()
        );
        let nested = Msg::SlaveError {
            slave: 0,
            error: ProtocolError::SlaveFailed {
                slave: 3,
                error: Box::new(ProtocolError::Inconsistent { detail }),
            },
        };
        assert!(nested.wire_bytes() > big.wire_bytes() - 32);
    }

    #[test]
    fn replica_wire_cost_counts_snapshot_and_counters() {
        let bare = Msg::Replica(Box::new(ReplicaMsg {
            term: 0,
            epoch: 0,
            invocation: 3,
            ckpt_stride: 1,
            alive: vec![true; 16],
            fresh: 2,
            snapshot: None,
            best_banked: 2,
            recovery: RecoveryStats::default(),
            incarnations: vec![0; 16],
        }));
        let with_snap = Msg::Replica(Box::new(ReplicaMsg {
            term: 0,
            epoch: 0,
            invocation: 3,
            ckpt_stride: 1,
            alive: vec![true; 16],
            fresh: 2,
            snapshot: Some((
                2,
                vec![(0, vec![vec![0.0; 100]]), (1, vec![vec![0.0; 100]])],
            )),
            best_banked: 2,
            recovery: RecoveryStats::default(),
            incarnations: vec![0; 16],
        }));
        assert!(bare.wire_bytes() >= 32 + 48 + 16 + 128 + RecoveryStats::WIRE_BYTES);
        assert_eq!(
            with_snap.wire_bytes(),
            bare.wire_bytes() + 8 + 2 * (8 + 800)
        );
    }

    #[test]
    fn election_messages_are_small() {
        for m in [
            Msg::MasterPing { term: 1 },
            Msg::Candidacy {
                term: 1,
                candidate: 0,
                fresh: 4,
            },
            Msg::Vote {
                term: 1,
                voter: 2,
                candidate: 0,
            },
            Msg::Promoted {
                term: 1,
                master_idx: 0,
            },
        ] {
            assert!(m.wire_bytes() <= 64, "{m:?} must stay control-sized");
        }
    }
}
