//! The runtime's message vocabulary.
//!
//! One message enum covers all three execution engines (independent,
//! pipelined, shrinking). Messages carry *real application data* — moved
//! work units contain the actual array slices, boundary messages the actual
//! halo values — so the runtime's gather/scatter and pipeline catch-up
//! logic is exercised for real and results can be verified bit-for-bit
//! against sequential execution.

use dlb_sim::SimDuration;

/// The per-unit application payload: one `Vec<f64>` per moved array (in the
/// order given by the compiler's `MovedArray` descriptors). For MM a unit is
/// `[a_row, c_row]`; for SOR `[b_column]`; for LU `[a_column]`.
pub type UnitData = Vec<Vec<f64>>;

/// Which end of a slave's contiguous block a move takes units from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edge {
    /// Lowest-indexed units.
    Low,
    /// Highest-indexed units.
    High,
}

/// One work-movement order: the addressed slave sends `count` units to
/// slave `to`, taking them from the given `edge` of its local block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MoveOrder {
    pub to: usize,
    pub count: u64,
    pub edge: Edge,
}

/// Master → slave balancing instructions.
#[derive(Clone, Debug, Default)]
pub struct Instructions {
    /// Monotone sequence number (per slave).
    pub seq: u64,
    /// Outgoing work movements this slave must perform.
    pub moves: Vec<MoveOrder>,
    /// How many hook instances to skip before the next status exchange
    /// (§4.3: computed from the target balancing period and predicted
    /// computation rate).
    pub hooks_to_skip: u64,
}

/// Slave → master status, sent at load-balancing hooks.
#[derive(Clone, Debug)]
pub struct Status {
    pub slave: usize,
    /// Invocation (outer-loop iteration / sweep / step) the slave is in.
    pub invocation: u64,
    /// Monotone per-slave hook-firing counter. Lets the master discard
    /// duplicated status messages under fault injection.
    pub hook_seq: u64,
    /// Work units completed since the previous status message.
    pub units_done_delta: u64,
    /// Elapsed virtual time since the previous status message.
    pub elapsed: SimDuration,
    /// Units this slave owns that still have future work (§4.7).
    pub active_units: u64,
    /// Highest instruction sequence number this slave has applied. Lets the
    /// master tell whether `active_units` already reflects the orders it
    /// issued earlier (unapplied orders must still be discounted).
    pub last_applied_seq: u64,
    /// Cumulative count of Transfer messages this slave has sent.
    pub transfers_sent: u64,
    /// Cumulative count of Transfer messages received, by sender index.
    /// Per-sender resolution lets the master match acknowledgements to the
    /// orders it issued even when transfers from different senders race.
    pub received_from: Vec<u64>,
    /// Measured elapsed cost of the most recent work movement as
    /// `(units_moved, elapsed)`, if any (feeds the frequency controller's
    /// movement-cost bound and the per-unit movement estimate).
    pub move_cost_sample: Option<(u64, SimDuration)>,
    /// Measured elapsed cost of the previous hook's master interaction
    /// (feeds the frequency controller's interaction-cost bound).
    pub interaction_cost_sample: Option<SimDuration>,
}

/// One moved work unit with its iteration state.
#[derive(Clone, Debug)]
pub struct MovedUnit {
    /// Global unit index.
    pub id: usize,
    /// Independent engine: already computed in the tagged invocation.
    pub done: bool,
    /// Shrinking engine: the unit has been updated through this step.
    /// Pipelined engine: blocks completed this sweep (the unit's phase).
    pub updated_through: u64,
    /// The application data (one vector per moved array).
    pub data: UnitData,
    /// Pipelined engine: sweep-start snapshot of the unit's values (needed
    /// as the right halo of its left neighbour).
    pub old: Option<Vec<f64>>,
}

/// Slave → slave work transfer.
#[derive(Clone, Debug)]
pub struct TransferMsg {
    pub from: usize,
    /// Invocation / sweep / step this transfer belongs to.
    pub invocation: u64,
    /// Pipelined engine: the sender's phase when the move takes effect; the
    /// receiver incorporates the columns when its own phase reaches this
    /// value (set-aside) or catches them up if it is already past (§4.5).
    pub effective_block: u64,
    pub units: Vec<MovedUnit>,
    /// Pipelined engine, right-to-left moves: sweep-start values of the
    /// sender's new first column, which becomes the receiver's right halo.
    pub right_old: Option<Vec<f64>>,
}

/// All runtime messages.
#[derive(Clone, Debug)]
pub enum Msg {
    // ---- master -> slaves ----
    /// Initial assignment: per-slave `[lo, hi)` unit ranges, the actor ids
    /// of all slaves (for direct slave↔slave sends), and the pipelined
    /// block size chosen at startup.
    Start {
        slaves: Vec<dlb_sim::ActorId>,
        assignment: Vec<(usize, usize)>,
        block_rows: u64,
    },
    Instructions(Instructions),
    /// Barrier release: begin the given invocation (sweep / step / rep).
    InvocationStart {
        invocation: u64,
    },
    /// Request final data; slaves answer with `GatherData` and terminate.
    Gather,
    // ---- slave -> master ----
    Status(Status),
    /// The slave has no local work left in `invocation`. `metric` is the
    /// slave's accumulated convergence contribution for this invocation
    /// (cumulative; the master keeps the latest value per slave).
    InvocationDone {
        slave: usize,
        invocation: u64,
        transfers_sent: u64,
        received_from: Vec<u64>,
        metric: f64,
        /// Restore acknowledgement watermark: the largest `k` such that this
        /// slave has applied every `Restore` with sequence `1..=k`. Zero when
        /// no restores were ever addressed to it.
        restore_seq: u64,
    },
    GatherData {
        slave: usize,
        units: Vec<(usize, UnitData)>,
    },
    // ---- slave <-> slave ----
    Transfer(TransferMsg),
    /// Pipelined: new values of column `col` (the sender's last column)
    /// for one row block. Tagged with the column id so a receiver whose
    /// left neighbour changed mid-sweep never consumes stale halos.
    Boundary {
        sweep: u64,
        block: u64,
        col: usize,
        values: Vec<f64>,
    },
    /// Pipelined: sweep-start old values of the sender's first column
    /// (the receiver's right halo for the whole sweep).
    SweepOld {
        sweep: u64,
        values: Vec<f64>,
    },
    /// Shrinking: the pivot unit's data for `step`, broadcast by its owner.
    Pivot {
        step: u64,
        values: Vec<f64>,
    },
    // ---- fault-tolerance protocol ----
    /// Master → slave: adopt these units of a dead slave. `invocation` is the
    /// current barrier; the receiver replays each unit's computation up to it.
    /// `seq` is a monotone per-destination counter acknowledged via
    /// `InvocationDone::restore_seq`; unacknowledged restores are re-sent, and
    /// the receiver deduplicates by sequence number.
    Restore {
        seq: u64,
        invocation: u64,
        units: Vec<(usize, UnitData)>,
    },
    /// Master → slave: you were declared dead; terminate quietly. Protects a
    /// falsely-suspected slave from double-computing units that were already
    /// re-scattered to survivors.
    Evict,
    /// Master → slaves: the run failed; terminate quietly.
    Abort,
    /// Slave → master: fatal protocol error; the run cannot continue.
    SlaveError {
        slave: usize,
        error: crate::error::ProtocolError,
    },
    /// Master → slave: your `GatherData` arrived; safe to terminate.
    GatherAck,
}

impl Msg {
    /// Approximate wire size in bytes, used to charge the network model.
    pub fn wire_bytes(&self) -> u64 {
        const HDR: u64 = 32;
        let f64s = |v: &Vec<f64>| 8 * v.len() as u64;
        match self {
            Msg::Start { assignment, .. } => HDR + 16 * assignment.len() as u64,
            Msg::Instructions(i) => HDR + 24 * i.moves.len() as u64,
            Msg::InvocationStart { .. } | Msg::Gather | Msg::InvocationDone { .. } => HDR,
            Msg::Status(_) => HDR + 64,
            Msg::GatherData { units, .. } => {
                HDR + units
                    .iter()
                    .map(|(_, d)| 8 + d.iter().map(f64s).sum::<u64>())
                    .sum::<u64>()
            }
            Msg::Transfer(t) => {
                HDR + t.right_old.as_ref().map(f64s).unwrap_or(0)
                    + t.units
                        .iter()
                        .map(|u| {
                            24 + u.data.iter().map(f64s).sum::<u64>()
                                + u.old.as_ref().map(f64s).unwrap_or(0)
                        })
                        .sum::<u64>()
            }
            Msg::Boundary { values, .. }
            | Msg::SweepOld { values, .. }
            | Msg::Pivot { values, .. } => HDR + f64s(values),
            Msg::Restore { units, .. } => {
                HDR + units
                    .iter()
                    .map(|(_, d)| 8 + d.iter().map(f64s).sum::<u64>())
                    .sum::<u64>()
            }
            Msg::Evict | Msg::Abort | Msg::GatherAck => HDR,
            Msg::SlaveError { .. } => HDR + 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_scale_with_payload() {
        let small = Msg::Boundary {
            sweep: 0,
            block: 0,
            col: 0,
            values: vec![0.0; 10],
        };
        let big = Msg::Boundary {
            sweep: 0,
            block: 0,
            col: 0,
            values: vec![0.0; 1000],
        };
        assert_eq!(small.wire_bytes(), 32 + 80);
        assert_eq!(big.wire_bytes(), 32 + 8000);
    }

    #[test]
    fn transfer_counts_all_unit_arrays() {
        let t = Msg::Transfer(TransferMsg {
            from: 0,
            invocation: 0,
            effective_block: 0,
            units: vec![MovedUnit {
                id: 3,
                done: false,
                updated_through: 0,
                data: vec![vec![0.0; 100], vec![0.0; 100]],
                old: Some(vec![0.0; 100]),
            }],
            right_old: None,
        });
        assert_eq!(t.wire_bytes(), 32 + 24 + 3 * 800);
    }

    #[test]
    fn control_messages_are_small() {
        assert!(Msg::Gather.wire_bytes() < 64);
        assert!(
            Msg::Status(Status {
                slave: 0,
                invocation: 0,
                hook_seq: 0,
                units_done_delta: 0,
                elapsed: SimDuration::ZERO,
                active_units: 0,
                last_applied_seq: 0,
                transfers_sent: 0,
                received_from: Vec::new(),
                move_cost_sample: None,
                interaction_cost_sample: None,
            })
            .wire_bytes()
                < 128
        );
    }
}
