//! Work allocation and movement planning (§3.2).
//!
//! The master computes a new distribution in which the work assigned to
//! each slave is proportional to its contribution to the aggregate
//! computation rate, then derives movement instructions:
//!
//! * **Direct** (Fig. 1a): applications without loop-carried dependences —
//!   surplus slaves ship units straight to deficit slaves.
//! * **AdjacentOnly** (Fig. 1b): pipelined applications — only boundary
//!   shifts between logically adjacent slaves are allowed, so the block
//!   distribution (and hence the number of processor-boundary dependences)
//!   is preserved; intermediate slaves participate in multi-hop shifts.

use crate::msg::{Edge, MoveOrder};

/// Split `total` units proportionally to `rates` using the largest-remainder
/// method, guaranteeing every slave at least `min_per_slave` (as long as
/// `total >= n * min_per_slave`). Zero or unmeasured rates fall back to an
/// equal split.
pub fn proportional_allocation(total: u64, rates: &[f64], min_per_slave: u64) -> Vec<u64> {
    let n = rates.len();
    assert!(n > 0, "no slaves");
    let sum: f64 = rates.iter().sum();
    // `!(sum > 0.0)` deliberately catches NaN as well as zero/negative.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(sum > 0.0) || rates.iter().any(|r| !r.is_finite() || *r < 0.0) {
        // Equal split.
        let base = total / n as u64;
        let rem = (total % n as u64) as usize;
        return (0..n).map(|i| base + u64::from(i < rem)).collect();
    }
    let floor_min = if total >= min_per_slave * n as u64 {
        min_per_slave
    } else {
        0
    };
    let distributable = total - floor_min * n as u64;
    // Largest remainder over the distributable part.
    let exact: Vec<f64> = rates
        .iter()
        .map(|r| distributable as f64 * r / sum)
        .collect();
    let mut shares: Vec<u64> = exact.iter().map(|e| e.floor() as u64).collect();
    let assigned: u64 = shares.iter().sum();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    let mut leftover = distributable - assigned;
    for &i in order.iter().cycle() {
        if leftover == 0 {
            break;
        }
        shares[i] += 1;
        leftover -= 1;
    }
    for s in &mut shares {
        *s += floor_min;
    }
    debug_assert_eq!(shares.iter().sum::<u64>(), total);
    shares
}

/// Plan direct moves turning `current` into `target` (equal sums): greedy
/// largest-surplus → largest-deficit pairing. Returns per-source orders.
pub fn plan_direct_moves(current: &[u64], target: &[u64]) -> Vec<(usize, MoveOrder)> {
    assert_eq!(current.len(), target.len());
    debug_assert_eq!(current.iter().sum::<u64>(), target.iter().sum::<u64>());
    let mut surplus: Vec<(usize, u64)> = Vec::new();
    let mut deficit: Vec<(usize, u64)> = Vec::new();
    for i in 0..current.len() {
        use std::cmp::Ordering::*;
        match current[i].cmp(&target[i]) {
            Greater => surplus.push((i, current[i] - target[i])),
            Less => deficit.push((i, target[i] - current[i])),
            Equal => {}
        }
    }
    surplus.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    deficit.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut orders = Vec::new();
    let (mut si, mut di) = (0, 0);
    while si < surplus.len() && di < deficit.len() {
        let take = surplus[si].1.min(deficit[di].1);
        orders.push((
            surplus[si].0,
            MoveOrder {
                to: deficit[di].0,
                count: take,
                edge: Edge::High,
            },
        ));
        surplus[si].1 -= take;
        deficit[di].1 -= take;
        if surplus[si].1 == 0 {
            si += 1;
        }
        if deficit[di].1 == 0 {
            di += 1;
        }
    }
    orders
}

/// Plan adjacent-only boundary shifts turning `current` into `target`
/// (slaves own contiguous index blocks in slave order). For each boundary
/// between slave `i` and `i+1`, compare cumulative targets: a positive
/// difference shifts units right-to-left (slave `i+1` sends its lowest
/// units to `i`), negative shifts left-to-right (slave `i` sends its
/// highest units to `i+1`).
pub fn plan_adjacent_shifts(current: &[u64], target: &[u64]) -> Vec<(usize, MoveOrder)> {
    assert_eq!(current.len(), target.len());
    debug_assert_eq!(current.iter().sum::<u64>(), target.iter().sum::<u64>());
    let mut orders = Vec::new();
    let mut cur_cum = 0i128;
    let mut tgt_cum = 0i128;
    for i in 0..current.len().saturating_sub(1) {
        cur_cum += current[i] as i128;
        tgt_cum += target[i] as i128;
        let diff = tgt_cum - cur_cum; // >0: boundary moves right: i+1 -> i
        if diff > 0 {
            orders.push((
                i + 1,
                MoveOrder {
                    to: i,
                    count: diff as u64,
                    edge: Edge::Low,
                },
            ));
        } else if diff < 0 {
            orders.push((
                i,
                MoveOrder {
                    to: i + 1,
                    count: (-diff) as u64,
                    edge: Edge::High,
                },
            ));
        }
    }
    orders
}

/// Projected completion time (arbitrary time units) of `alloc` under
/// `rates`: the slowest slave's `units / rate`. Slaves with zero rate and
/// nonzero units yield infinity.
pub fn projected_time(alloc: &[u64], rates: &[f64]) -> f64 {
    alloc
        .iter()
        .zip(rates)
        .map(|(&u, &r)| {
            if u == 0 {
                0.0
            } else if r > 0.0 {
                u as f64 / r
            } else {
                f64::INFINITY
            }
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_basic() {
        let a = proportional_allocation(100, &[1.0, 1.0, 1.0, 1.0], 1);
        assert_eq!(a, vec![25, 25, 25, 25]);
        let b = proportional_allocation(100, &[3.0, 1.0], 1);
        // min 1 reserved each, 98 split 3:1 = 73.5/24.5; the tie remainder
        // goes to the lower index.
        assert_eq!(b, vec![75, 25]);
        assert_eq!(b.iter().sum::<u64>(), 100);
    }

    #[test]
    fn proportional_conserves_total_exactly() {
        for total in [1u64, 7, 99, 1998] {
            for rates in [
                vec![1.0, 2.0, 3.0],
                vec![0.1, 0.1, 0.7, 0.3],
                vec![5.0; 8],
                vec![1e-9, 1.0],
            ] {
                let a = proportional_allocation(total, &rates, 1);
                assert_eq!(a.iter().sum::<u64>(), total, "{total} {rates:?}");
            }
        }
    }

    #[test]
    fn zero_rates_fall_back_to_equal() {
        let a = proportional_allocation(10, &[0.0, 0.0, 0.0], 1);
        assert_eq!(a, vec![4, 3, 3]);
    }

    #[test]
    fn min_per_slave_respected() {
        // Rate ratio 1000:1 but everyone keeps at least one unit.
        let a = proportional_allocation(10, &[1000.0, 1.0, 1.0, 1.0], 1);
        assert!(a.iter().all(|&u| u >= 1), "{a:?}");
        assert_eq!(a.iter().sum::<u64>(), 10);
        // Unless the total is too small to honor it.
        let b = proportional_allocation(2, &[1.0, 1.0, 1.0], 1);
        assert_eq!(b.iter().sum::<u64>(), 2);
    }

    #[test]
    fn loaded_slave_gets_proportionally_less() {
        // Paper scenario: one slave at half rate (one competing task).
        let a = proportional_allocation(500, &[0.5, 1.0, 1.0, 1.0], 1);
        assert_eq!(a.iter().sum::<u64>(), 500);
        assert!((a[0] as f64 - 500.0 / 7.0).abs() < 2.0, "{a:?}");
        assert!((a[1] as f64 - 1000.0 / 7.0).abs() < 2.0, "{a:?}");
    }

    #[test]
    fn direct_moves_conserve_and_resolve() {
        let cur = vec![40, 20, 20, 20];
        let tgt = vec![10, 30, 30, 30];
        let orders = plan_direct_moves(&cur, &tgt);
        // Apply the orders and check we reach the target.
        let mut state = cur.clone();
        for (from, o) in &orders {
            state[*from] -= o.count;
            state[o.to] += o.count;
            assert_eq!(o.edge, Edge::High);
        }
        assert_eq!(state, tgt);
    }

    #[test]
    fn direct_moves_empty_when_balanced() {
        assert!(plan_direct_moves(&[5, 5], &[5, 5]).is_empty());
    }

    #[test]
    fn adjacent_shifts_simple() {
        // One boundary shift: s0 overloaded.
        let orders = plan_adjacent_shifts(&[30, 10], &[20, 20]);
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0].0, 0);
        assert_eq!(
            orders[0].1,
            MoveOrder {
                to: 1,
                count: 10,
                edge: Edge::High
            }
        );
    }

    #[test]
    fn adjacent_shifts_chain() {
        // All surplus at s0, deficits at s2: s0->s1 and s1->s2 (multi-hop,
        // the paper's "intermediate processors may be involved").
        let orders = plan_adjacent_shifts(&[30, 10, 10], &[10, 20, 20]);
        assert_eq!(
            orders,
            vec![
                (
                    0,
                    MoveOrder {
                        to: 1,
                        count: 20,
                        edge: Edge::High
                    }
                ),
                (
                    1,
                    MoveOrder {
                        to: 2,
                        count: 10,
                        edge: Edge::High
                    }
                ),
            ]
        );
    }

    #[test]
    fn adjacent_shifts_both_directions() {
        let orders = plan_adjacent_shifts(&[10, 30, 10], &[17, 16, 17]);
        // Boundary 0: s1 sends its low 7 to s0. Boundary 1: s1 sends high 7 to s2.
        assert_eq!(
            orders,
            vec![
                (
                    1,
                    MoveOrder {
                        to: 0,
                        count: 7,
                        edge: Edge::Low
                    }
                ),
                (
                    1,
                    MoveOrder {
                        to: 2,
                        count: 7,
                        edge: Edge::High
                    }
                ),
            ]
        );
    }

    #[test]
    fn adjacent_preserves_contiguity() {
        // Property: applying boundary shifts to contiguous blocks yields
        // contiguous blocks with the target sizes.
        let cur = vec![12u64, 3, 9, 8];
        let tgt = vec![5u64, 9, 9, 9];
        let orders = plan_adjacent_shifts(&cur, &tgt);
        // Simulate contiguous ranges.
        let mut bounds = vec![0u64];
        for c in &cur {
            let last = *bounds.last().unwrap();
            bounds.push(last + c);
        }
        // Apply shifts to cumulative boundaries.
        for (from, o) in &orders {
            let b = if o.to == from + 1 { from + 1 } else { *from };
            if o.to == from + 1 {
                bounds[b] -= o.count; // boundary moves left
            } else {
                bounds[b] += o.count; // boundary moves right
            }
        }
        let result: Vec<u64> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(result, tgt);
    }

    #[test]
    fn projected_time_basics() {
        assert_eq!(projected_time(&[10, 10], &[1.0, 2.0]), 10.0);
        assert_eq!(projected_time(&[0, 10], &[0.0, 2.0]), 5.0);
        assert_eq!(projected_time(&[1, 10], &[0.0, 2.0]), f64::INFINITY);
    }
}
