//! Property tests for the balancer's pure decision machinery.

use dlb_core::alloc::{plan_adjacent_shifts, plan_direct_moves, proportional_allocation};
use dlb_core::RateFilter;
use proptest::prelude::*;

proptest! {
    /// Allocation conserves the total, honors the per-slave minimum when
    /// feasible, and is within one unit of the exact proportional share
    /// (largest-remainder property).
    #[test]
    fn allocation_proportionality(
        total in 1u64..5000,
        rates in proptest::collection::vec(0.01f64..100.0, 1..16),
    ) {
        let n = rates.len() as u64;
        let a = proportional_allocation(total, &rates, 1);
        prop_assert_eq!(a.iter().sum::<u64>(), total);
        if total >= n {
            prop_assert!(a.iter().all(|&u| u >= 1));
            let sum: f64 = rates.iter().sum();
            let distributable = (total - n) as f64;
            for (i, &u) in a.iter().enumerate() {
                let exact = 1.0 + distributable * rates[i] / sum;
                prop_assert!(
                    (u as f64 - exact).abs() <= 1.0 + 1e-9,
                    "slave {}: {} vs exact {:.3}",
                    i, u, exact
                );
            }
        }
    }

    /// Direct move plans transform current into target exactly, and no
    /// order exceeds the sender's holdings.
    #[test]
    fn direct_plans_reach_target(
        counts in proptest::collection::vec((0u64..200, 0.01f64..10.0), 2..12),
    ) {
        let current: Vec<u64> = counts.iter().map(|&(c, _)| c).collect();
        let rates: Vec<f64> = counts.iter().map(|&(_, r)| r).collect();
        let total: u64 = current.iter().sum();
        let target = proportional_allocation(total, &rates, 0);
        let orders = plan_direct_moves(&current, &target);
        let mut state = current.clone();
        for (from, o) in &orders {
            prop_assert!(state[*from] >= o.count, "order exceeds holdings");
            state[*from] -= o.count;
            state[o.to] += o.count;
        }
        prop_assert_eq!(state, target);
    }

    /// Adjacent shift plans also reach the target, and every order is
    /// between neighbours.
    #[test]
    fn adjacent_plans_reach_target(
        counts in proptest::collection::vec(0u64..200, 2..12),
        rates in proptest::collection::vec(0.01f64..10.0, 12),
    ) {
        let total: u64 = counts.iter().sum();
        let rates = &rates[..counts.len()];
        let target = proportional_allocation(total, rates, 0);
        // Chains may require receiving before sending; the runtime clamps
        // each order to the sender's holdings and the master re-plans at
        // the next status. Model that: apply clamped rounds until stable;
        // multi-hop chains must converge within n rounds.
        let mut state = counts.clone();
        for _round in 0..counts.len() + 1 {
            let orders = plan_adjacent_shifts(&state, &target);
            if orders.is_empty() {
                break;
            }
            for (from, o) in &orders {
                prop_assert!(*from + 1 == o.to || o.to + 1 == *from, "non-adjacent order");
                let give = state[*from].min(o.count);
                state[*from] -= give;
                state[o.to] += give;
            }
            prop_assert_eq!(state.iter().sum::<u64>(), total, "conservation");
        }
        prop_assert_eq!(state, target, "chains failed to converge");
    }

    /// The rate filter's output always stays within the range of the inputs
    /// it has seen (convex updates cannot overshoot the observed history).
    #[test]
    fn filter_stays_within_observed_range(
        samples in proptest::collection::vec(0.0f64..1000.0, 1..60),
    ) {
        let mut f = RateFilter::default();
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for &s in &samples {
            lo = lo.min(s);
            hi = hi.max(s);
            let adj = f.update(s);
            prop_assert!(adj >= lo - 1e-9 && adj <= hi + 1e-9, "{} not in [{}, {}]", adj, lo, hi);
        }
    }

    /// Feeding a constant rate converges to it exactly.
    #[test]
    fn filter_converges_to_constant(rate in 0.1f64..1000.0) {
        let mut f = RateFilter::default();
        let mut adj = 0.0;
        for _ in 0..50 {
            adj = f.update(rate);
        }
        prop_assert!((adj - rate).abs() < rate * 0.01);
    }
}
