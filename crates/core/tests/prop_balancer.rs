//! Randomized property tests for the balancer's pure decision machinery.
//!
//! Driven by the crate's own deterministic PCG generator (seeded loops)
//! so the suite is hermetic — no external property-testing dependency —
//! and every failure reproduces exactly.

use dlb_core::alloc::{plan_adjacent_shifts, plan_direct_moves, proportional_allocation};
use dlb_core::RateFilter;
use dlb_sim::Pcg32;

const CASES: u64 = 300;

/// Allocation conserves the total, honors the per-slave minimum when
/// feasible, and is within one unit of the exact proportional share
/// (largest-remainder property).
#[test]
fn allocation_proportionality() {
    let mut rng = Pcg32::new(0xA110C);
    for case in 0..CASES {
        let total = 1 + rng.gen_range(0, 4999);
        let n = 1 + rng.gen_range(0, 15) as usize;
        let rates: Vec<f64> = (0..n).map(|_| 0.01 + rng.next_f64() * 99.99).collect();
        let n = n as u64;
        let a = proportional_allocation(total, &rates, 1);
        assert_eq!(
            a.iter().sum::<u64>(),
            total,
            "case {case}: total not conserved"
        );
        if total >= n {
            assert!(a.iter().all(|&u| u >= 1), "case {case}: minimum violated");
            let sum: f64 = rates.iter().sum();
            let distributable = (total - n) as f64;
            for (i, &u) in a.iter().enumerate() {
                let exact = 1.0 + distributable * rates[i] / sum;
                assert!(
                    (u as f64 - exact).abs() <= 1.0 + 1e-9,
                    "case {case}, slave {i}: {u} vs exact {exact:.3}"
                );
            }
        }
    }
}

/// Direct move plans transform current into target exactly, and no
/// order exceeds the sender's holdings.
#[test]
fn direct_plans_reach_target() {
    let mut rng = Pcg32::new(0xD14EC7);
    for case in 0..CASES {
        let n = 2 + rng.gen_range(0, 10) as usize;
        let current: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 200)).collect();
        let rates: Vec<f64> = (0..n).map(|_| 0.01 + rng.next_f64() * 9.99).collect();
        let total: u64 = current.iter().sum();
        let target = proportional_allocation(total, &rates, 0);
        let orders = plan_direct_moves(&current, &target);
        let mut state = current.clone();
        for (from, o) in &orders {
            assert!(
                state[*from] >= o.count,
                "case {case}: order exceeds holdings"
            );
            state[*from] -= o.count;
            state[o.to] += o.count;
        }
        assert_eq!(state, target, "case {case}: plan missed target");
    }
}

/// Adjacent shift plans also reach the target, and every order is
/// between neighbours.
#[test]
fn adjacent_plans_reach_target() {
    let mut rng = Pcg32::new(0xAD7ACE);
    for case in 0..CASES {
        let n = 2 + rng.gen_range(0, 10) as usize;
        let counts: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 200)).collect();
        let rates: Vec<f64> = (0..n).map(|_| 0.01 + rng.next_f64() * 9.99).collect();
        let total: u64 = counts.iter().sum();
        let target = proportional_allocation(total, &rates, 0);
        // Chains may require receiving before sending; the runtime clamps
        // each order to the sender's holdings and the master re-plans at
        // the next status. Model that: apply clamped rounds until stable;
        // multi-hop chains must converge within n rounds.
        let mut state = counts.clone();
        for _round in 0..n + 1 {
            let orders = plan_adjacent_shifts(&state, &target);
            if orders.is_empty() {
                break;
            }
            for (from, o) in &orders {
                assert!(
                    *from + 1 == o.to || o.to + 1 == *from,
                    "case {case}: non-adjacent order"
                );
                let give = state[*from].min(o.count);
                state[*from] -= give;
                state[o.to] += give;
            }
            assert_eq!(
                state.iter().sum::<u64>(),
                total,
                "case {case}: conservation"
            );
        }
        assert_eq!(state, target, "case {case}: chains failed to converge");
    }
}

/// The rate filter's output always stays within the range of the inputs
/// it has seen (convex updates cannot overshoot the observed history).
#[test]
fn filter_stays_within_observed_range() {
    let mut rng = Pcg32::new(0xF117E6);
    for case in 0..CASES {
        let len = 1 + rng.gen_range(0, 59) as usize;
        let samples: Vec<f64> = (0..len).map(|_| rng.next_f64() * 1000.0).collect();
        let mut f = RateFilter::default();
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for &s in &samples {
            lo = lo.min(s);
            hi = hi.max(s);
            let adj = f.update(s);
            assert!(
                adj >= lo - 1e-9 && adj <= hi + 1e-9,
                "case {case}: {adj} not in [{lo}, {hi}]"
            );
        }
    }
}

/// Feeding a constant rate converges to it exactly.
#[test]
fn filter_converges_to_constant() {
    let mut rng = Pcg32::new(0xC0117E6);
    for case in 0..CASES {
        let rate = 0.1 + rng.next_f64() * 999.9;
        let mut f = RateFilter::default();
        let mut adj = 0.0;
        for _ in 0..50 {
            adj = f.update(rate);
        }
        assert!(
            (adj - rate).abs() < rate * 0.01,
            "case {case}: {adj} did not converge to {rate}"
        );
    }
}
