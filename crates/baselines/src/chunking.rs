//! Chunk-size policies for central-queue self-scheduling.
//!
//! The paper's §6 surveys the self-scheduling literature it departs from:
//! slaves pull chunks of iterations from a logically central queue. The
//! classic policies differ in how the chunk size decreases as the queue
//! drains:
//!
//! * **Fixed** (chunk self-scheduling): constant `k` iterations.
//! * **GSS** (Polychronopoulos & Kuck 1987): `ceil(R / P)` of the `R`
//!   remaining iterations.
//! * **Factoring** (Hummel, Schonberg & Flynn 1991): batches of `P` equal
//!   chunks covering half the remaining work: `ceil(R / 2P)`.
//! * **Trapezoid** (Tzen & Ni 1993): chunk sizes decrease linearly from
//!   `first` to `last`.

/// A chunk-size policy. Policies are stateful (TSS decreases linearly).
#[derive(Clone, Debug, PartialEq)]
pub enum ChunkPolicy {
    Fixed(u64),
    Gss,
    Factoring,
    Trapezoid { first: u64, last: u64 },
}

impl ChunkPolicy {
    /// The paper-recommended trapezoid parameters for `n` iterations on
    /// `p` processors: first = n/(2p), last = 1.
    pub fn trapezoid_default(n: u64, p: u64) -> ChunkPolicy {
        ChunkPolicy::Trapezoid {
            first: (n / (2 * p.max(1))).max(1),
            last: 1,
        }
    }

    /// Create the mutable scheduling state for a loop of `n` iterations on
    /// `p` processors.
    pub fn start(&self, n: u64, p: u64) -> ChunkState {
        let p = p.max(1);
        let delta = match *self {
            ChunkPolicy::Trapezoid { first, last } => {
                let first = first.max(1);
                let last = last.max(1).min(first);
                // C = 2n / (first + last) chunks, linear decrease.
                let c = (2 * n).div_ceil(first + last).max(2);
                (first - last) as f64 / (c - 1) as f64
            }
            _ => 0.0,
        };
        ChunkState {
            policy: self.clone(),
            remaining: n,
            p,
            issued: 0,
            tss_delta: delta,
            tss_next: match *self {
                ChunkPolicy::Trapezoid { first, .. } => first.max(1) as f64,
                _ => 0.0,
            },
        }
    }
}

/// Mutable scheduling state: hands out successive chunk sizes.
#[derive(Clone, Debug)]
pub struct ChunkState {
    policy: ChunkPolicy,
    remaining: u64,
    p: u64,
    issued: u64,
    tss_delta: f64,
    tss_next: f64,
}

impl ChunkState {
    /// Remaining iterations in the queue.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Number of chunks issued so far.
    pub fn chunks_issued(&self) -> u64 {
        self.issued
    }

    /// Take the next chunk (its size), or `None` when the queue is empty.
    pub fn next_chunk(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        let size = match self.policy {
            ChunkPolicy::Fixed(k) => k.max(1),
            ChunkPolicy::Gss => self.remaining.div_ceil(self.p),
            ChunkPolicy::Factoring => self.remaining.div_ceil(2 * self.p),
            ChunkPolicy::Trapezoid { .. } => {
                let s = self.tss_next.round().max(1.0) as u64;
                self.tss_next = (self.tss_next - self.tss_delta).max(1.0);
                s
            }
        }
        .min(self.remaining)
        .max(1);
        self.remaining -= size;
        self.issued += 1;
        Some(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(policy: ChunkPolicy, n: u64, p: u64) -> Vec<u64> {
        let mut st = policy.start(n, p);
        let mut out = Vec::new();
        while let Some(c) = st.next_chunk() {
            out.push(c);
        }
        out
    }

    #[test]
    fn all_policies_cover_exactly_n() {
        for policy in [
            ChunkPolicy::Fixed(7),
            ChunkPolicy::Gss,
            ChunkPolicy::Factoring,
            ChunkPolicy::trapezoid_default(500, 8),
        ] {
            for n in [1u64, 13, 100, 500] {
                let chunks = drain(policy.clone(), n, 8);
                assert_eq!(chunks.iter().sum::<u64>(), n, "{policy:?} n={n}");
                assert!(chunks.iter().all(|&c| c >= 1));
            }
        }
    }

    #[test]
    fn fixed_is_constant() {
        let chunks = drain(ChunkPolicy::Fixed(10), 95, 4);
        assert_eq!(&chunks[..9], &[10; 9]);
        assert_eq!(chunks[9], 5);
    }

    #[test]
    fn gss_decreases_geometrically() {
        let chunks = drain(ChunkPolicy::Gss, 100, 4);
        assert_eq!(chunks[0], 25); // ceil(100/4)
        assert_eq!(chunks[1], 19); // ceil(75/4)
        for w in chunks.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(*chunks.last().unwrap(), 1);
    }

    #[test]
    fn factoring_halves_per_batch() {
        let chunks = drain(ChunkPolicy::Factoring, 64, 4);
        assert_eq!(chunks[0], 8); // 64/(2*4)
        for w in chunks.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn trapezoid_decreases_linearly() {
        let chunks = drain(ChunkPolicy::trapezoid_default(512, 8), 512, 8);
        assert_eq!(chunks[0], 32); // 512/(2*8)
        for w in chunks.windows(2) {
            assert!(w[1] <= w[0], "{chunks:?}");
            assert!(w[0] - w[1] <= 2, "linear step too big: {chunks:?}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(drain(ChunkPolicy::Gss, 0, 4), Vec::<u64>::new());
        assert_eq!(drain(ChunkPolicy::Fixed(100), 5, 4), vec![5]);
        let one_proc = drain(ChunkPolicy::Gss, 10, 1);
        assert_eq!(one_proc, vec![10]);
    }
}
