//! Central-queue self-scheduling on distributed memory.
//!
//! The paper's §6 contrasts its approach with the self-scheduling family
//! (central task queue, slaves pull chunks when idle). Those schemes were
//! designed for shared memory; on a network of workstations the queue is
//! remote, so *data ships with every chunk* — each chunk costs a request
//! round trip plus the unit data out and the results back. This module
//! implements that honestly so the comparison experiments can show where
//! the crossover lies.
//!
//! Only single-invocation independent loops are supported (repeated loops
//! would re-ship everything every pass — exactly the locality argument the
//! paper makes for keeping work distributed).

use crate::chunking::ChunkPolicy;
use dlb_core::kernels::IndependentKernel;
use dlb_core::msg::UnitData;
use dlb_sim::{
    ActorId, CpuWork, NetConfig, NodeConfig, SimBuilder, SimDuration, SimReport, SimTime,
};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Messages of the self-scheduling runtime.
#[derive(Clone, Debug)]
pub enum SsMsg {
    /// Slave → master: give me work.
    Request { slave: usize },
    /// Master → slave: a chunk of units (ids + data).
    Chunk { units: Vec<(usize, UnitData)> },
    /// Master → slave: the queue is empty; terminate.
    Empty,
    /// Slave → master: computed results.
    Results { units: Vec<(usize, UnitData)> },
}

fn unit_bytes(d: &UnitData) -> u64 {
    32 + d.iter().map(|v| 8 * v.len() as u64).sum::<u64>()
}

impl SsMsg {
    fn wire_bytes(&self) -> u64 {
        match self {
            SsMsg::Request { .. } | SsMsg::Empty => 32,
            SsMsg::Chunk { units } | SsMsg::Results { units } => {
                32 + units.iter().map(|(_, d)| unit_bytes(d)).sum::<u64>()
            }
        }
    }
}

/// Outcome of a self-scheduled run.
#[derive(Debug)]
pub struct SsReport {
    pub elapsed: SimDuration,
    /// Final unit data ordered by id.
    pub result: Vec<UnitData>,
    pub chunks_issued: u64,
    pub sim: SimReport,
}

/// Run `kernel` (single invocation) under central-queue self-scheduling
/// with the given chunk policy. `slave_nodes` configures the workers; the
/// master (queue holder) runs on `master_node`.
pub fn run_self_scheduled(
    kernel: Arc<dyn IndependentKernel>,
    policy: ChunkPolicy,
    slave_nodes: Vec<NodeConfig>,
    master_node: NodeConfig,
    net: NetConfig,
) -> SsReport {
    assert_eq!(
        kernel.invocations(),
        1,
        "self-scheduling baseline supports single-invocation loops"
    );
    let n_slaves = slave_nodes.len();
    assert!(n_slaves > 0);
    let n_units = kernel.n_units();

    let mut sim = SimBuilder::<SsMsg>::new().net(net);
    let m_node = sim.add_node(master_node);
    let s_nodes: Vec<_> = slave_nodes.into_iter().map(|nc| sim.add_node(nc)).collect();

    #[allow(clippy::type_complexity)]
    let outcome: Arc<Mutex<(Vec<(usize, UnitData)>, u64)>> = Arc::new(Mutex::new((Vec::new(), 0)));
    let master_id = ActorId(0);

    {
        let kernel = Arc::clone(&kernel);
        let outcome = Arc::clone(&outcome);
        let policy = policy.clone();
        sim.spawn(m_node, "queue-master", move |ctx| {
            // Build the queue; charge a nominal setup cost.
            let mut queue: VecDeque<(usize, UnitData)> =
                (0..n_units).map(|i| (i, kernel.init_unit(i))).collect();
            ctx.advance_work(CpuWork::from_micros(10) * n_units as u64);
            let mut state = policy.start(n_units as u64, n_slaves as u64);
            let mut done: Vec<(usize, UnitData)> = Vec::with_capacity(n_units);
            let mut active = n_slaves;
            while active > 0 {
                let env = ctx.recv();
                match env.msg {
                    SsMsg::Request { slave: _ } => {
                        let from = ActorId(env.src);
                        match state.next_chunk() {
                            Some(size) => {
                                let units: Vec<(usize, UnitData)> =
                                    queue.drain(..size as usize).collect();
                                let msg = SsMsg::Chunk { units };
                                let bytes = msg.wire_bytes();
                                ctx.send(from, msg, bytes);
                            }
                            None => {
                                ctx.send(from, SsMsg::Empty, 32);
                                active -= 1;
                            }
                        }
                    }
                    SsMsg::Results { units } => done.extend(units),
                    other => panic!("queue master: unexpected {other:?}"),
                }
            }
            // Wait for any result messages still in flight.
            while done.len() < n_units {
                match ctx.recv().msg {
                    SsMsg::Results { units } => done.extend(units),
                    other => panic!("queue master drain: unexpected {other:?}"),
                }
            }
            // Tolerate a poisoned lock: a panicking peer must not mask
            // the outcome this actor computed (the assert below still sees
            // whatever was gathered).
            let mut o = outcome.lock().unwrap_or_else(|p| p.into_inner());
            o.0 = done;
            o.1 = state.chunks_issued();
        });
    }

    for (i, node) in s_nodes.into_iter().enumerate() {
        let kernel = Arc::clone(&kernel);
        sim.spawn(node, format!("ss-slave{i}"), move |ctx| loop {
            ctx.send(master_id, SsMsg::Request { slave: i }, 32);
            let env = ctx.recv();
            match env.msg {
                SsMsg::Chunk { mut units } => {
                    for (id, data) in &mut units {
                        ctx.advance_work(kernel.unit_cost());
                        kernel.compute(*id, data, 0);
                    }
                    let msg = SsMsg::Results { units };
                    let bytes = msg.wire_bytes();
                    ctx.send(master_id, msg, bytes);
                }
                SsMsg::Empty => break,
                other => panic!("ss slave: unexpected {other:?}"),
            }
        });
    }

    let sim_report = sim.run();
    let mut o = outcome.lock().unwrap_or_else(|p| p.into_inner());
    let mut gathered = std::mem::take(&mut o.0);
    gathered.sort_by_key(|(id, _)| *id);
    assert_eq!(gathered.len(), n_units, "self-scheduling lost units");
    SsReport {
        elapsed: sim_report.end_time - SimTime::ZERO,
        result: gathered.into_iter().map(|(_, d)| d).collect(),
        chunks_issued: o.1,
        sim: sim_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_apps::{Calibration, MatMul};

    fn mm(n: usize) -> Arc<MatMul> {
        Arc::new(MatMul::new(n, 1, 3, &Calibration::new(0.01)))
    }

    #[test]
    fn computes_correct_result() {
        let kernel = mm(24);
        for policy in [
            ChunkPolicy::Fixed(3),
            ChunkPolicy::Gss,
            ChunkPolicy::Factoring,
            ChunkPolicy::trapezoid_default(24, 3),
        ] {
            let report = run_self_scheduled(
                kernel.clone(),
                policy.clone(),
                vec![NodeConfig::default(); 3],
                NodeConfig::default(),
                NetConfig::default(),
            );
            assert_eq!(
                MatMul::result_c(&report.result),
                kernel.sequential(),
                "{policy:?}"
            );
            assert!(report.chunks_issued >= 3, "{policy:?}");
        }
    }

    #[test]
    fn small_chunks_adapt_to_loaded_worker() {
        use dlb_sim::LoadModel;
        let kernel = mm(32);
        let run_with = |loaded: bool, policy: ChunkPolicy| {
            let mut nodes = vec![NodeConfig::default(); 4];
            if loaded {
                nodes[0] = NodeConfig::with_load(LoadModel::Constant(3));
            }
            run_self_scheduled(
                kernel.clone(),
                policy,
                nodes,
                NodeConfig::default(),
                NetConfig::default(),
            )
            .elapsed
        };
        // Small fixed chunks absorb the load: the slow worker just pulls
        // fewer of them.
        let balanced = run_with(false, ChunkPolicy::Fixed(2));
        let loaded = run_with(true, ChunkPolicy::Fixed(2));
        let ratio = loaded.as_secs_f64() / balanced.as_secs_f64();
        assert!(ratio < 2.0, "self-scheduling failed to adapt: {ratio}");
        // GSS's large early chunks are a known weakness when a *slow*
        // worker grabs one: ceil(n/p) units land on the loaded node.
        let gss_loaded = run_with(true, ChunkPolicy::Gss);
        assert!(
            gss_loaded.as_secs_f64() > loaded.as_secs_f64(),
            "expected GSS to suffer more than small fixed chunks"
        );
    }

    #[test]
    fn data_shipping_dominates_message_bytes() {
        let kernel = mm(16);
        let report = run_self_scheduled(
            kernel.clone(),
            ChunkPolicy::Fixed(1),
            vec![NodeConfig::default(); 2],
            NodeConfig::default(),
            NetConfig::default(),
        );
        let master_bytes = report.sim.actors[0].bytes_sent;
        // 16 units of 2 vectors x 16 f64 = ~256 bytes each minimum.
        assert!(master_bytes > 16 * 256, "bytes {master_bytes}");
    }

    #[test]
    #[should_panic(expected = "single-invocation")]
    fn repeated_loops_rejected() {
        let kernel = Arc::new(MatMul::new(8, 2, 0, &Calibration::new(0.01)));
        run_self_scheduled(
            kernel,
            ChunkPolicy::Gss,
            vec![NodeConfig::default()],
            NodeConfig::default(),
            NetConfig::default(),
        );
    }
}
