//! Diffusion (near-neighbour) load balancing.
//!
//! The paper's §6 describes diffusion models for tightly-coupled machines:
//! work starts distributed, and slaves shift units to a *neighbour* when
//! they detect a local imbalance — no global information, so load flattens
//! out one hop per exchange period (cf. Willebeek-LeMair & Reeves). We
//! implement a sender-initiated variant for single-invocation independent
//! loops: each slave periodically tells its neighbours its queue length;
//! a slave that learns a neighbour has materially less queued work pushes
//! half the difference toward it.
//!
//! A passive coordinator collects completion notices and final results (it
//! plays no part in balancing — unlike the paper's master).

use dlb_core::kernels::IndependentKernel;
use dlb_core::msg::UnitData;
use dlb_sim::{ActorId, NetConfig, NodeConfig, SimBuilder, SimDuration, SimReport, SimTime};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Messages of the diffusion runtime.
#[derive(Clone, Debug)]
pub enum DiffMsg {
    /// Neighbour → neighbour: my current queue length.
    LoadInfo { qlen: u64 },
    /// Neighbour → neighbour: take these units.
    Work { units: Vec<(usize, UnitData)> },
    /// Slave → coordinator: I computed `delta` more units.
    Progress { delta: u64 },
    /// Coordinator → slave: all work done; send results and stop.
    Stop,
    /// Slave → coordinator: final owned results.
    Results { units: Vec<(usize, UnitData)> },
}

impl DiffMsg {
    fn wire_bytes(&self) -> u64 {
        match self {
            DiffMsg::LoadInfo { .. } | DiffMsg::Progress { .. } | DiffMsg::Stop => 32,
            DiffMsg::Work { units } | DiffMsg::Results { units } => {
                32 + units
                    .iter()
                    .map(|(_, d)| 32 + d.iter().map(|v| 8 * v.len() as u64).sum::<u64>())
                    .sum::<u64>()
            }
        }
    }
}

/// Policy knobs for the diffusion balancer.
#[derive(Clone, Copy, Debug)]
pub struct DiffusionConfig {
    /// Period between load-info exchanges.
    pub exchange_period: SimDuration,
    /// Minimum queue-length difference before work is pushed.
    pub threshold: u64,
}

impl Default for DiffusionConfig {
    fn default() -> Self {
        DiffusionConfig {
            exchange_period: SimDuration::from_millis(500),
            threshold: 2,
        }
    }
}

/// Outcome of a diffusion-balanced run.
#[derive(Debug)]
pub struct DiffReport {
    pub elapsed: SimDuration,
    pub result: Vec<UnitData>,
    pub sim: SimReport,
}

/// Run `kernel` (single invocation) with diffusion balancing.
pub fn run_diffusion(
    kernel: Arc<dyn IndependentKernel>,
    cfg: DiffusionConfig,
    slave_nodes: Vec<NodeConfig>,
    coordinator_node: NodeConfig,
    net: NetConfig,
) -> DiffReport {
    assert_eq!(
        kernel.invocations(),
        1,
        "diffusion baseline supports single-invocation loops"
    );
    let n_slaves = slave_nodes.len();
    assert!(n_slaves > 0);
    let n_units = kernel.n_units();

    let mut sim = SimBuilder::<DiffMsg>::new().net(net);
    let c_node = sim.add_node(coordinator_node);
    let s_nodes: Vec<_> = slave_nodes.into_iter().map(|nc| sim.add_node(nc)).collect();
    let coordinator = ActorId(0);
    let slave_ids: Vec<ActorId> = (1..=n_slaves).map(ActorId).collect();

    let outcome: Arc<Mutex<Vec<(usize, UnitData)>>> = Arc::new(Mutex::new(Vec::new()));

    {
        let outcome = Arc::clone(&outcome);
        let slave_ids = slave_ids.clone();
        sim.spawn(c_node, "coordinator", move |ctx| {
            let mut done = 0u64;
            while done < n_units as u64 {
                match ctx.recv().msg {
                    DiffMsg::Progress { delta } => done += delta,
                    other => panic!("coordinator: unexpected {other:?}"),
                }
            }
            for &s in &slave_ids {
                ctx.send(s, DiffMsg::Stop, 32);
            }
            let mut results = Vec::with_capacity(n_units);
            let mut got = 0;
            while got < slave_ids.len() {
                match ctx.recv().msg {
                    DiffMsg::Results { units } => {
                        results.extend(units);
                        got += 1;
                    }
                    DiffMsg::Progress { .. } => {} // stale
                    other => panic!("coordinator gather: unexpected {other:?}"),
                }
            }
            // Tolerate a poisoned lock: a panicking peer must not mask
            // the gathered results.
            *outcome.lock().unwrap_or_else(|p| p.into_inner()) = results;
        });
    }

    let ranges = dlb_core::block_ranges(n_units, n_slaves);
    for (i, node) in s_nodes.into_iter().enumerate() {
        let kernel = Arc::clone(&kernel);
        let slave_ids = slave_ids.clone();
        let range = ranges[i];
        sim.spawn(node, format!("diff-slave{i}"), move |ctx| {
            let mut queue: VecDeque<(usize, UnitData)> = (range.0..range.1)
                .map(|id| (id, kernel.init_unit(id)))
                .collect();
            let mut finished: Vec<(usize, UnitData)> = Vec::new();
            let neighbors: Vec<ActorId> = [i.checked_sub(1), Some(i + 1)]
                .iter()
                .flatten()
                .filter(|&&j| j < slave_ids.len())
                .map(|&j| slave_ids[j])
                .collect();
            let mut next_exchange = ctx.now() + cfg.exchange_period;
            let mut progress_since = 0u64;
            // A message pulled out by a deadline wait, handled next round.
            let mut pending: Option<dlb_sim::Envelope<DiffMsg>> = None;
            loop {
                // Handle everything queued.
                while let Some(env) = pending.take().or_else(|| ctx.try_recv()) {
                    match env.msg {
                        DiffMsg::LoadInfo { qlen } => {
                            let mine = queue.len() as u64;
                            if mine > qlen + cfg.threshold {
                                let give = ((mine - qlen) / 2) as usize;
                                let units: Vec<_> = queue.split_off(queue.len() - give).into();
                                let msg = DiffMsg::Work { units };
                                let bytes = msg.wire_bytes();
                                ctx.send(ActorId(env.src), msg, bytes);
                            }
                        }
                        DiffMsg::Work { units } => queue.extend(units),
                        DiffMsg::Stop => {
                            finished.extend(queue.drain(..));
                            let msg = DiffMsg::Results { units: finished };
                            let bytes = msg.wire_bytes();
                            ctx.send(coordinator, msg, bytes);
                            return;
                        }
                        other => panic!("diff slave: unexpected {other:?}"),
                    }
                }
                // Periodic exchange + progress report.
                if ctx.now() >= next_exchange {
                    for &nb in &neighbors {
                        ctx.send(
                            nb,
                            DiffMsg::LoadInfo {
                                qlen: queue.len() as u64,
                            },
                            32,
                        );
                    }
                    if progress_since > 0 {
                        ctx.send(
                            coordinator,
                            DiffMsg::Progress {
                                delta: progress_since,
                            },
                            32,
                        );
                        progress_since = 0;
                    }
                    next_exchange = ctx.now() + cfg.exchange_period;
                }
                // Compute one unit or wait for messages.
                if let Some((id, mut data)) = queue.pop_front() {
                    ctx.advance_work(kernel.unit_cost());
                    kernel.compute(id, &mut data, 0);
                    finished.push((id, data));
                    progress_since += 1;
                } else {
                    if progress_since > 0 {
                        ctx.send(
                            coordinator,
                            DiffMsg::Progress {
                                delta: progress_since,
                            },
                            32,
                        );
                        progress_since = 0;
                    }
                    // Sleep until the next exchange or the next message,
                    // whichever comes first.
                    pending = ctx.recv_deadline(next_exchange);
                }
            }
        });
    }

    let sim_report = sim.run();
    let mut gathered = std::mem::take(&mut *outcome.lock().unwrap_or_else(|p| p.into_inner()));
    gathered.sort_by_key(|(id, _)| *id);
    assert_eq!(gathered.len(), n_units, "diffusion lost units");
    DiffReport {
        elapsed: sim_report.end_time - SimTime::ZERO,
        result: gathered.into_iter().map(|(_, d)| d).collect(),
        sim: sim_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_apps::{Calibration, MatMul};
    use dlb_sim::LoadModel;

    fn mm(n: usize) -> Arc<MatMul> {
        Arc::new(MatMul::new(n, 1, 9, &Calibration::new(0.005)))
    }

    #[test]
    fn computes_correct_result() {
        let kernel = mm(24);
        let report = run_diffusion(
            kernel.clone(),
            DiffusionConfig::default(),
            vec![NodeConfig::default(); 3],
            NodeConfig::default(),
            NetConfig::default(),
        );
        assert_eq!(MatMul::result_c(&report.result), kernel.sequential());
    }

    #[test]
    fn diffuses_away_from_loaded_node() {
        let kernel = mm(48);
        let run_with = |loaded: bool| {
            let mut nodes = vec![NodeConfig::default(); 4];
            if loaded {
                nodes[1] = NodeConfig::with_load(LoadModel::Constant(3));
            }
            let r = run_diffusion(
                kernel.clone(),
                DiffusionConfig::default(),
                nodes,
                NodeConfig::default(),
                NetConfig::default(),
            );
            assert_eq!(MatMul::result_c(&r.result), kernel.sequential());
            r.elapsed
        };
        let balanced = run_with(false);
        let loaded = run_with(true);
        // Losing 3/4 of one of four nodes costs 18.75% of capacity; without
        // balancing the run would take ~4x. Diffusion should stay well
        // under 2.5x.
        let ratio = loaded.as_secs_f64() / balanced.as_secs_f64();
        assert!(ratio < 2.5, "diffusion failed to adapt: {ratio}");
    }

    #[test]
    fn single_slave_degenerate() {
        let kernel = mm(8);
        let report = run_diffusion(
            kernel.clone(),
            DiffusionConfig::default(),
            vec![NodeConfig::default()],
            NodeConfig::default(),
            NetConfig::default(),
        );
        assert_eq!(MatMul::result_c(&report.result), kernel.sequential());
    }

    #[test]
    fn work_moves_only_between_neighbors() {
        // With the load on slave 3 (end of the chain), work must flow
        // through slave 2 — verify messages happened and result is right.
        let kernel = mm(32);
        let mut nodes = vec![NodeConfig::default(); 4];
        nodes[3] = NodeConfig::with_load(LoadModel::Constant(3));
        let report = run_diffusion(
            kernel.clone(),
            DiffusionConfig::default(),
            nodes,
            NodeConfig::default(),
            NetConfig::default(),
        );
        assert_eq!(MatMul::result_c(&report.result), kernel.sequential());
        // Every slave exchanged messages with someone.
        for a in &report.sim.actors[1..] {
            assert!(a.msgs_sent > 0);
        }
    }
}
