//! # dlb-baselines — comparison schedulers from the paper's related work
//!
//! §6 of Siegell & Steenkiste positions their rate-proportional global
//! balancer against three families. This crate implements runnable versions
//! of each on the same simulator and kernels, so the comparison experiments
//! can actually be run:
//!
//! * **Static block distribution** — `dlb-core` with the balancer disabled
//!   (`BalancerConfig { enabled: false, .. }`).
//! * **Central-queue self-scheduling** ([`self_sched`]) with the classic
//!   chunking policies ([`chunking`]): fixed chunks, guided
//!   self-scheduling, factoring, and trapezoid self-scheduling — including
//!   the data-shipping costs those schemes incur on distributed memory.
//! * **Diffusion / near-neighbour balancing** ([`diffusion`]) — local
//!   exchanges only, no global knowledge.

#![forbid(unsafe_code)]

pub mod chunking;
pub mod diffusion;
pub mod self_sched;

pub use chunking::{ChunkPolicy, ChunkState};
pub use diffusion::{run_diffusion, DiffReport, DiffusionConfig};
pub use self_sched::{run_self_scheduled, SsReport};
