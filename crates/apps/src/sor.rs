//! Successive overrelaxation (the paper's SOR, Fig. 3).
//!
//! An n×n grid stored by columns, updated Gauss–Seidel style for a fixed
//! number of sweeps with the paper's stencil:
//!
//! ```text
//! b[j][i] = 0.493*(b[j][i-1] + b[j-1][i] + b[j][i+1] + b[j+1][i]) - 0.972*b[j][i]
//! ```
//!
//! Columns are distributed (loop-carried dependences at distance ±1), the
//! sweep pipelines along the rows, and the boundary columns/rows are fixed.
//! Each grid element's update is a single expression over well-defined
//! operands (new left/up, old right/down), so the result is **bitwise
//! identical** for any legal execution order — the engine's block pipeline,
//! catch-up after work movement, and this module's sequential reference all
//! agree exactly.

use crate::calibration::{seeded_matrix, Calibration};
use dlb_core::kernels::PipelinedKernel;
use dlb_core::msg::UnitData;
use dlb_sim::CpuWork;

const C_NEIGHBOR: f64 = 0.493;
const C_SELF: f64 = -0.972;

/// The SOR application.
pub struct Sor {
    n: usize,
    sweeps: u64,
    /// Initial grid, by columns: `grid[j][i]`.
    grid: Vec<Vec<f64>>,
    elem_cost: CpuWork,
}

impl Sor {
    /// Build an n×n problem (n ≥ 3) with deterministic inputs.
    pub fn new(n: usize, sweeps: u64, seed: u64, cal: &Calibration) -> Sor {
        assert!(n >= 3 && sweeps > 0);
        let grid = seeded_matrix(n, n, seed ^ 0x50);
        let elem_cost = cal.work_for_flops(6.0);
        Sor {
            n,
            sweeps,
            grid,
            elem_cost,
        }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Sequential reference: the grid after all sweeps.
    pub fn sequential(&self) -> Vec<Vec<f64>> {
        let mut g = self.grid.clone();
        let n = self.n;
        for _ in 0..self.sweeps {
            // Right/down neighbours read the previous sweep's values.
            let old: Vec<Vec<f64>> = g.clone();
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    g[j][i] = C_NEIGHBOR
                        * (g[j][i - 1] + g[j - 1][i] + old[j][i + 1] + old[j + 1][i])
                        + C_SELF * old[j][i];
                }
            }
        }
        g
    }

    /// Sequential execution time on a dedicated reference node.
    pub fn sequential_time(&self) -> dlb_sim::SimDuration {
        let elems = ((self.n - 2) * (self.n - 2)) as u64;
        (self.elem_cost * elems * self.sweeps).dedicated_duration(1.0)
    }

    /// Reassemble the full grid (walls + gathered interior columns).
    pub fn result_grid(&self, result: &[UnitData]) -> Vec<Vec<f64>> {
        let mut g = Vec::with_capacity(self.n);
        g.push(self.grid[0].clone());
        for u in result {
            g.push(u[0].clone());
        }
        g.push(self.grid[self.n - 1].clone());
        assert_eq!(g.len(), self.n);
        g
    }

    /// The matching IR program.
    pub fn program(&self) -> dlb_compiler::Program {
        dlb_compiler::programs::sor(self.n as i64, self.sweeps as i64)
    }
}

impl PipelinedKernel for Sor {
    fn n_units(&self) -> usize {
        self.n - 2
    }

    fn col_len(&self) -> usize {
        self.n
    }

    fn sweeps(&self) -> u64 {
        self.sweeps
    }

    fn init_unit(&self, idx: usize) -> Vec<f64> {
        self.grid[idx + 1].clone()
    }

    fn left_wall(&self) -> Vec<f64> {
        self.grid[0].clone()
    }

    fn right_wall(&self) -> Vec<f64> {
        self.grid[self.n - 1].clone()
    }

    fn compute_block(
        &self,
        col: &mut [f64],
        left: &[f64],
        right_old: &[f64],
        rows: std::ops::Range<usize>,
    ) {
        for i in rows {
            // col[i-1] is already updated this sweep (same column, earlier
            // row); col[i+1] still holds the previous sweep's value.
            col[i] =
                C_NEIGHBOR * (col[i - 1] + left[i] + col[i + 1] + right_old[i]) + C_SELF * col[i];
        }
    }

    fn elem_cost(&self) -> CpuWork {
        self.elem_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct two-buffer reference in strict (i, j) order, tracking exactly
    /// which operands are new vs old.
    fn reference(initial: &[Vec<f64>], sweeps: u64) -> Vec<Vec<f64>> {
        let n = initial.len();
        let mut g = initial.to_vec();
        for _ in 0..sweeps {
            let old = g.clone();
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    g[j][i] = C_NEIGHBOR
                        * (g[j][i - 1] + g[j - 1][i] + old[j][i + 1] + old[j + 1][i])
                        + C_SELF * old[j][i];
                }
            }
        }
        g
    }

    #[test]
    fn sequential_matches_reference() {
        let cal = Calibration::default();
        let s = Sor::new(10, 3, 1, &cal);
        assert_eq!(s.sequential(), reference(&s.grid, 3));
    }

    #[test]
    fn kernel_blocks_match_sequential_single_column_updates() {
        // Drive the kernel column-by-column in pipeline order on a tiny
        // grid and compare to the sequential result bit-for-bit.
        let cal = Calibration::default();
        let s = Sor::new(6, 2, 5, &cal);
        let n = s.n;
        let mut cols: Vec<Vec<f64>> = (0..n - 2).map(|i| s.init_unit(i)).collect();
        let lw = s.left_wall();
        let rw = s.right_wall();
        for _sweep in 0..2 {
            let old: Vec<Vec<f64>> = cols.clone();
            for j in 0..cols.len() {
                let left_owned;
                let left: &[f64] = if j == 0 {
                    &lw
                } else {
                    left_owned = cols[j - 1].clone();
                    &left_owned
                };
                let right: &[f64] = if j + 1 < old.len() { &old[j + 1] } else { &rw };
                s.compute_block(&mut cols[j], left, right, 1..n - 1);
            }
        }
        let seq = s.sequential();
        for j in 0..n - 2 {
            assert_eq!(cols[j], seq[j + 1], "column {}", j + 1);
        }
    }

    #[test]
    fn walls_never_change() {
        let cal = Calibration::default();
        let s = Sor::new(8, 4, 2, &cal);
        let g = s.sequential();
        assert_eq!(g[0], s.grid[0]);
        assert_eq!(g[7], s.grid[7]);
        for j in 0..8 {
            assert_eq!(g[j][0], s.grid[j][0]);
            assert_eq!(g[j][7], s.grid[j][7]);
        }
    }

    #[test]
    fn cost_calibration() {
        // Paper scale: 2000x2000, 15 sweeps, 1 MFLOP/s -> ~359 s.
        let s = Sor::new(2000, 15, 0, &Calibration { mflops: 1.0 });
        let t = s.sequential_time().as_secs_f64();
        assert!((t - 359.28).abs() < 0.1, "{t}");
    }
}
