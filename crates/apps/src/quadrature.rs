//! Adaptive quadrature — an *irregular* application (§2.1).
//!
//! The paper's Table 1 applications all have predictable iteration sizes;
//! §2.1 warns that many scientific codes do not: "the presence of
//! conditionals in the distributed loop makes it difficult to predict the
//! cost of different iterations", and the balancer must cope because it
//! reasons about measured *rates*, not predicted costs.
//!
//! This app integrates a spiky function over `n` sub-intervals with
//! adaptive interval bisection: units near the spikes recurse deeply and
//! cost orders of magnitude more than smooth ones. A static block
//! distribution is badly imbalanced even on dedicated machines; dynamic
//! balancing fixes it with no application knowledge.

use crate::calibration::Calibration;
use dlb_core::kernels::IndependentKernel;
use dlb_core::msg::UnitData;
use dlb_sim::CpuWork;

/// The integrand: smooth background plus narrow spikes.
fn f(x: f64) -> f64 {
    let mut v = (3.0 * x).sin();
    for &c in &[0.137, 0.391, 0.544, 0.729, 0.918] {
        v += 0.05 / ((x - c) * (x - c) + 1e-4);
    }
    v
}

/// Recursive adaptive Simpson on `[a, b]`; returns `(integral, evals)`.
fn adaptive(a: f64, b: f64, fa: f64, fb: f64, fm: f64, eps: f64, depth: u32) -> (f64, u64) {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let h = b - a;
    let whole = h / 6.0 * (fa + 4.0 * fm + fb);
    let left = h / 12.0 * (fa + 4.0 * flm + fm);
    let right = h / 12.0 * (fm + 4.0 * frm + fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * eps {
        (left + right + delta / 15.0, 2)
    } else {
        let (li, le) = adaptive(a, m, fa, fm, flm, eps / 2.0, depth - 1);
        let (ri, re) = adaptive(m, b, fm, fb, frm, eps / 2.0, depth - 1);
        (li + ri, le + re + 2)
    }
}

/// One unit = one sub-interval of `[0, 1]`.
pub struct Quadrature {
    n: usize,
    eps: f64,
    cal: Calibration,
    /// Function evaluations per unit (precomputed so costs are exact).
    evals: Vec<u64>,
    values: Vec<f64>,
}

impl Quadrature {
    /// Integrate over `n` sub-intervals to tolerance `eps`.
    pub fn new(n: usize, eps: f64, cal: &Calibration) -> Quadrature {
        assert!(n > 0 && eps > 0.0);
        let mut evals = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            let (v, e) = Self::integrate_unit(i, n, eps);
            values.push(v);
            evals.push(e + 3);
        }
        Quadrature {
            n,
            eps,
            cal: *cal,
            evals,
            values,
        }
    }

    fn integrate_unit(i: usize, n: usize, eps: f64) -> (f64, u64) {
        let a = i as f64 / n as f64;
        let b = (i + 1) as f64 / n as f64;
        let fa = f(a);
        let fb = f(b);
        let fm = f(0.5 * (a + b));
        adaptive(a, b, fa, fb, fm, eps / n as f64, 30)
    }

    /// Sequential reference: the total integral.
    pub fn sequential(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Total from a gathered run result.
    pub fn result_total(result: &[UnitData]) -> f64 {
        result.iter().map(|u| u[0][0]).sum()
    }

    /// Sequential execution time on a dedicated reference node.
    pub fn sequential_time(&self) -> dlb_sim::SimDuration {
        let total: u64 = self.evals.iter().sum();
        self.cal
            .work_for_flops(total as f64 * FLOPS_PER_EVAL)
            .dedicated_duration(1.0)
    }

    /// Cost skew: most expensive unit over the mean (the irregularity the
    /// balancer has to absorb).
    pub fn skew(&self) -> f64 {
        let max = *self.evals.iter().max().expect("nonempty") as f64;
        let mean = self.evals.iter().sum::<u64>() as f64 / self.n as f64;
        max / mean
    }
}

/// ~20 flops per integrand evaluation (5 spike terms + sine).
const FLOPS_PER_EVAL: f64 = 20.0;

impl IndependentKernel for Quadrature {
    fn n_units(&self) -> usize {
        self.n
    }

    fn invocations(&self) -> u64 {
        1
    }

    fn init_unit(&self, _idx: usize) -> UnitData {
        vec![vec![0.0]]
    }

    fn compute(&self, idx: usize, unit: &mut UnitData, _invocation: u64) {
        let (v, _) = Self::integrate_unit(idx, self.n, self.eps);
        unit[0][0] = v;
    }

    fn unit_cost(&self) -> CpuWork {
        // The *average* — what a cost model would guess for a regular loop.
        let mean = self.evals.iter().sum::<u64>() as f64 / self.n as f64;
        self.cal.work_for_flops(mean * FLOPS_PER_EVAL)
    }

    fn unit_cost_for(&self, idx: usize, _invocation: u64) -> CpuWork {
        self.cal
            .work_for_flops(self.evals[idx] as f64 * FLOPS_PER_EVAL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_is_accurate() {
        // Reference with a much finer fixed grid.
        let q = Quadrature::new(64, 1e-9, &Calibration::default());
        let coarse: f64 = q.sequential();
        let q2 = Quadrature::new(4096, 1e-12, &Calibration::default());
        let fine: f64 = q2.sequential();
        assert!((coarse - fine).abs() < 1e-6, "{coarse} vs {fine}");
    }

    #[test]
    fn costs_are_genuinely_irregular() {
        let q = Quadrature::new(64, 1e-9, &Calibration::default());
        assert!(
            q.skew() > 3.0,
            "expected spiky cost distribution, skew {}",
            q.skew()
        );
    }

    #[test]
    fn per_unit_cost_reflects_evals() {
        let q = Quadrature::new(32, 1e-9, &Calibration::default());
        let max_idx = (0..32).max_by_key(|&i| q.evals[i]).unwrap();
        let min_idx = (0..32).min_by_key(|&i| q.evals[i]).unwrap();
        assert!(q.unit_cost_for(max_idx, 0) > q.unit_cost_for(min_idx, 0));
    }

    #[test]
    fn kernel_compute_matches_precomputed() {
        let q = Quadrature::new(16, 1e-8, &Calibration::default());
        for i in 0..16 {
            let mut u = q.init_unit(i);
            q.compute(i, &mut u, 0);
            assert_eq!(u[0][0], q.values[i]);
        }
    }
}
