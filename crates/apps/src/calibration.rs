//! Cost-model calibration and deterministic input generation.
//!
//! The paper's testbed nodes are Sun 4/330 workstations; on these dense
//! kernels they sustain roughly 1 MFLOP/s (a 500×500 matrix multiply takes
//! ~250 s sequentially in the paper's Fig. 5a). All kernels charge virtual
//! CPU through a [`Calibration`] so experiments can rescale the machine
//! without touching the kernels.

use dlb_sim::{CpuWork, Pcg32};

/// Flops → virtual CPU conversion.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Sustained MFLOP/s of the reference node.
    pub mflops: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        // Sun 4/330-class.
        Calibration { mflops: 1.0 }
    }
}

impl Calibration {
    pub fn new(mflops: f64) -> Calibration {
        assert!(mflops > 0.0);
        Calibration { mflops }
    }

    /// CPU work for `flops` floating-point operations.
    pub fn work_for_flops(&self, flops: f64) -> CpuWork {
        CpuWork::from_flops(flops, self.mflops)
    }
}

/// Deterministic `rows × cols` matrix with entries in `[-1, 1)`.
pub fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Pcg32::new(seed);
    (0..rows)
        .map(|_| (0..cols).map(|_| rng.next_f64_signed()).collect())
        .collect()
}

/// Deterministic vector with entries in `[-1, 1)`.
pub fn seeded_vector(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = Pcg32::new(seed);
    (0..len).map(|_| rng.next_f64_signed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_inputs() {
        assert_eq!(seeded_matrix(4, 4, 9), seeded_matrix(4, 4, 9));
        assert_ne!(seeded_matrix(4, 4, 9), seeded_matrix(4, 4, 10));
        assert_eq!(seeded_vector(16, 3), seeded_vector(16, 3));
    }

    #[test]
    fn work_scales_inversely_with_mflops() {
        let slow = Calibration::new(1.0).work_for_flops(1e6);
        let fast = Calibration::new(10.0).work_for_flops(1e6);
        assert_eq!(slow.as_secs_f64(), 1.0);
        assert_eq!(fast.as_secs_f64(), 0.1);
    }
}
