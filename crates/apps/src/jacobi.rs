//! Damped Jacobi iteration with data-dependent termination (§4.1).
//!
//! Solves `A x = b` for a diagonally dominant `A` by sweeping
//! `x' = x + D⁻¹ (b − A x)` until the residual 1-norm falls below a
//! tolerance — the paper's "distributed loop nested inside a
//! data-dependent WHILE loop": the master must run the correct number of
//! balancing phases per sweep *and* reduce the convergence test's data
//! before deciding whether another sweep runs.
//!
//! Rows are the distributed units. Each unit carries its row of `A`, its
//! `b` entry, and its `x` entry; every sweep reads the *previous* iterate,
//! which is replicated via the kernel (all units advance in lockstep), so
//! iterations within a sweep stay independent.
//!
//! Modeling note: on real distributed memory the previous iterate would be
//! re-replicated by an allgather each sweep (the paper's §4.6 "arbitrary
//! communication"); here the kernel shares it in host memory and the
//! simulator does not charge for that exchange. The behaviours this app
//! exists to exercise — per-sweep balancing phases and the master's
//! data-dependent WHILE test — are unaffected.

use crate::calibration::{seeded_matrix, seeded_vector, Calibration};
use dlb_core::kernels::IndependentKernel;
use dlb_core::msg::UnitData;
use dlb_sim::CpuWork;
use std::sync::RwLock;

/// The Jacobi application.
pub struct Jacobi {
    n: usize,
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    tolerance: f64,
    max_sweeps: u64,
    unit_cost: CpuWork,
    /// Previous iterate, published at each sweep boundary. Indexed by
    /// sweep parity to keep reads and writes of a sweep disjoint.
    x: RwLock<[Vec<f64>; 2]>,
}

impl Jacobi {
    /// Build an n×n diagonally dominant system with deterministic inputs.
    pub fn new(n: usize, tolerance: f64, max_sweeps: u64, seed: u64, cal: &Calibration) -> Jacobi {
        assert!(n > 0 && max_sweeps > 0 && tolerance > 0.0);
        let mut a = seeded_matrix(n, n, seed ^ 0x7A);
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = n as f64; // dominance => damped Jacobi converges
        }
        let b = seeded_vector(n, seed ^ 0x7B);
        let x0 = vec![0.0; n];
        Jacobi {
            n,
            a,
            b,
            tolerance,
            max_sweeps,
            unit_cost: cal.work_for_flops(2.0 * n as f64 + 4.0),
            x: RwLock::new([x0.clone(), x0]),
        }
    }

    fn sweep_once(a: &[Vec<f64>], b: &[f64], x: &[f64], out: &mut [f64]) -> f64 {
        let mut residual = 0.0;
        for i in 0..b.len() {
            let mut dot = 0.0;
            for (av, xv) in a[i].iter().zip(x) {
                dot += av * xv;
            }
            let r = b[i] - dot;
            residual += r.abs();
            out[i] = x[i] + r / a[i][i];
        }
        residual
    }

    /// Sequential reference: `(x, sweeps_used)`.
    pub fn sequential(&self) -> (Vec<f64>, u64) {
        let mut x = vec![0.0; self.n];
        let mut next = vec![0.0; self.n];
        for sweep in 0..self.max_sweeps {
            let residual = Self::sweep_once(&self.a, &self.b, &x, &mut next);
            std::mem::swap(&mut x, &mut next);
            if residual < self.tolerance {
                return (x, sweep + 1);
            }
        }
        (x, self.max_sweeps)
    }

    /// Extract the solution from a gathered run result: unit `i`'s data is
    /// `[row_i, [b_i, x_i, residual_i]]`.
    pub fn result_x(result: &[UnitData]) -> Vec<f64> {
        result.iter().map(|u| u[1][1]).collect()
    }

    /// Solution residual `|b - A x|₁` for verification.
    pub fn residual_of(&self, x: &[f64]) -> f64 {
        let mut total = 0.0;
        for i in 0..self.n {
            let mut dot = 0.0;
            for (av, xv) in self.a[i].iter().zip(x) {
                dot += av * xv;
            }
            total += (self.b[i] - dot).abs();
        }
        total
    }
}

impl IndependentKernel for Jacobi {
    fn n_units(&self) -> usize {
        self.n
    }

    fn invocations(&self) -> u64 {
        self.max_sweeps
    }

    fn init_unit(&self, idx: usize) -> UnitData {
        vec![self.a[idx].clone(), vec![self.b[idx], 0.0, f64::MAX]]
    }

    fn compute(&self, idx: usize, unit: &mut UnitData, invocation: u64) {
        let row = &unit[0];
        let b = unit[1][0];
        // Read the previous iterate and drop the guard before writing —
        // the RwLock is not reentrant.
        let (dot, prev_xi) = {
            let guard = self.x.read().unwrap();
            let prev = &guard[(invocation % 2) as usize];
            let mut dot = 0.0;
            for (av, xv) in row.iter().zip(prev.iter()) {
                dot += av * xv;
            }
            (dot, prev[idx])
        };
        let r = b - dot;
        let next = prev_xi + r / row[idx];
        unit[1][1] = next;
        unit[1][2] = r.abs();
        // Publish for the next sweep. Writes go to the other parity slot,
        // so readers of the current sweep's iterate are never invalidated.
        self.x.write().unwrap()[((invocation + 1) % 2) as usize][idx] = next;
    }

    fn unit_cost(&self) -> CpuWork {
        self.unit_cost
    }

    fn local_metric(&self, _idx: usize, unit: &UnitData) -> f64 {
        unit[1][2] // residual contribution
    }

    fn converged(&self, _invocation: u64, metric: f64) -> bool {
        metric < self.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_converges() {
        let j = Jacobi::new(32, 1e-8, 200, 1, &Calibration::default());
        let (x, sweeps) = j.sequential();
        assert!(sweeps < 200, "did not converge early: {sweeps}");
        assert!(j.residual_of(&x) < 1e-7);
    }

    #[test]
    fn tighter_tolerance_needs_more_sweeps() {
        let loose = Jacobi::new(24, 1e-3, 500, 2, &Calibration::default());
        let tight = Jacobi::new(24, 1e-9, 500, 2, &Calibration::default());
        assert!(loose.sequential().1 < tight.sequential().1);
    }

    #[test]
    fn kernel_sweep_matches_sequential() {
        let j = Jacobi::new(16, 1e-30, 3, 5, &Calibration::default());
        // Drive the kernel by hand for 3 full sweeps.
        let mut units: Vec<UnitData> = (0..16).map(|i| j.init_unit(i)).collect();
        for sweep in 0..3 {
            for (i, u) in units.iter_mut().enumerate() {
                j.compute(i, u, sweep);
            }
        }
        let (x_seq, sweeps) = j.sequential();
        assert_eq!(sweeps, 3);
        let x_par: Vec<f64> = units.iter().map(|u| u[1][1]).collect();
        assert_eq!(x_par, x_seq);
    }
}
