//! LU decomposition without pivoting (the paper's LU, §4.7).
//!
//! The matrix is stored by columns and distributed by columns. At step `k`
//! the owner of column `k` broadcasts it (its sub-diagonal part already
//! holds the multipliers) and every active column `j > k` is updated:
//!
//! ```text
//! a[j][k]  = a[j][k] / a[k][k]          (multiplier)
//! a[j][i] -= a[j][k] * a[k][i]          for i in k+1..n
//! ```
//!
//! (`a[j]` is column j; the multiplier `a[j][k]` lives in the updated
//! column — the right-looking kji variant.) The distributed loop's bounds
//! (`j in k+1..n`) shrink with `k`, so the compiler classifies the program
//! `Shrinking` and the balancer only ever moves *active* columns.
//!
//! Inputs are made diagonally dominant so factorization without pivoting is
//! stable, and each update is a fixed expression over the broadcast pivot
//! column, so parallel results are bitwise equal to the sequential
//! reference no matter how columns move.

use crate::calibration::{seeded_matrix, Calibration};
use dlb_core::kernels::ShrinkingKernel;
use dlb_core::msg::UnitData;
use dlb_sim::CpuWork;

/// The LU application.
pub struct Lu {
    n: usize,
    /// Initial matrix, by columns: `cols[j][i] = A[i][j]`.
    cols: Vec<Vec<f64>>,
    cal: Calibration,
}

impl Lu {
    /// Build an n×n diagonally-dominant problem (n ≥ 2).
    pub fn new(n: usize, seed: u64, cal: &Calibration) -> Lu {
        assert!(n >= 2);
        let mut cols = seeded_matrix(n, n, seed ^ 0x1);
        for (j, col) in cols.iter_mut().enumerate() {
            col[j] += n as f64; // diagonal dominance
        }
        Lu { n, cols, cal: *cal }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Sequential reference: the packed LU factors (multipliers below the
    /// diagonal, U on and above), by columns.
    pub fn sequential(&self) -> Vec<Vec<f64>> {
        let mut a = self.cols.clone();
        for k in 0..self.n - 1 {
            let pivot = a[k].clone();
            for j in k + 1..self.n {
                update_column(&mut a[j], &pivot, k);
            }
        }
        a
    }

    /// Sequential execution time on a dedicated reference node.
    pub fn sequential_time(&self) -> dlb_sim::SimDuration {
        let mut total = CpuWork::ZERO;
        for k in 0..self.n - 1 {
            total += self.step_cost(k) * (self.n - 1 - k) as u64;
        }
        total.dedicated_duration(1.0)
    }

    /// Extract the factored columns from a gathered run result.
    pub fn result_cols(result: &[UnitData]) -> Vec<Vec<f64>> {
        result.iter().map(|u| u[0].clone()).collect()
    }

    /// Check `L × U ≈ A` for a packed Crout factorization (residual
    /// max-norm): `L` is lower triangular with the pivots on its diagonal
    /// (stored at and below the diagonal of each column), `U` is
    /// unit upper triangular (row multipliers stored above the diagonal).
    pub fn residual(&self, packed: &[Vec<f64>]) -> f64 {
        let n = self.n;
        let mut worst: f64 = 0.0;
        for j in 0..n {
            for i in 0..n {
                let kmax = i.min(j);
                let mut acc = 0.0;
                for k in 0..=kmax {
                    let l = packed[k][i]; // L[i][k], i >= k (column k)
                    let u = if k == j { 1.0 } else { packed[j][k] }; // U[k][j]
                    acc += l * u;
                }
                worst = worst.max((acc - self.cols[j][i]).abs());
            }
        }
        worst
    }

    /// The matching IR program.
    pub fn program(&self) -> dlb_compiler::Program {
        dlb_compiler::programs::lu(self.n as i64)
    }
}

/// The shared update expression (also used by the sequential reference so
/// results agree bitwise).
fn update_column(col: &mut [f64], pivot: &[f64], k: usize) {
    let m = col[k] / pivot[k];
    col[k] = m;
    for i in k + 1..col.len() {
        col[i] -= m * pivot[i];
    }
}

impl ShrinkingKernel for Lu {
    fn n_units(&self) -> usize {
        self.n
    }

    fn init_unit(&self, idx: usize) -> Vec<f64> {
        self.cols[idx].clone()
    }

    fn pivot_payload(&self, _k: usize, pivot_col: &[f64]) -> Vec<f64> {
        pivot_col.to_vec()
    }

    fn update(&self, _j: usize, col: &mut [f64], pivot: &[f64], k: usize) {
        update_column(col, pivot, k);
    }

    fn step_cost(&self, k: usize) -> CpuWork {
        // One division + 2 flops per trailing row.
        let flops = 1.0 + 2.0 * (self.n - 1 - k) as f64;
        self.cal.work_for_flops(flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_reconstructs_matrix() {
        let lu = Lu::new(24, 3, &Calibration::default());
        let packed = lu.sequential();
        let r = lu.residual(&packed);
        assert!(r < 1e-9, "residual {r}");
    }

    #[test]
    fn kernel_update_matches_sequential() {
        let lu = Lu::new(12, 9, &Calibration::default());
        let seq = lu.sequential();
        // Drive the kernel interface directly.
        let mut cols: Vec<Vec<f64>> = (0..12).map(|j| lu.init_unit(j)).collect();
        for k in 0..11 {
            let pivot = lu.pivot_payload(k, &cols[k].clone());
            for j in k + 1..12 {
                lu.update(j, &mut cols[j], &pivot, k);
            }
        }
        assert_eq!(cols, seq);
    }

    #[test]
    fn step_cost_shrinks() {
        let lu = Lu::new(100, 0, &Calibration::default());
        assert!(lu.step_cost(0) > lu.step_cost(50));
        assert!(lu.step_cost(50) > lu.step_cost(98));
    }

    #[test]
    fn sequential_time_positive_and_cubic_ish() {
        let small = Lu::new(50, 0, &Calibration::default()).sequential_time();
        let big = Lu::new(100, 0, &Calibration::default()).sequential_time();
        let ratio = big.as_secs_f64() / small.as_secs_f64();
        assert!((6.0..10.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn diagonal_dominance_keeps_multipliers_small() {
        // Crout: the unit-scaled entries are U's rows (stored above the
        // diagonal); diagonal dominance keeps them below 1.
        let lu = Lu::new(32, 7, &Calibration::default());
        let packed = lu.sequential();
        for j in 0..32 {
            for k in 0..j {
                assert!(packed[j][k].abs() < 1.0, "multiplier U[{k}][{j}] too big");
            }
        }
    }
}
