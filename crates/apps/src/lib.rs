//! # dlb-apps — the paper's example applications
//!
//! The three routines of Siegell & Steenkiste's Table 1, each as a real
//! data kernel implementing the matching `dlb-core` kernel trait, paired
//! with its IR program for the compiler, a sequential reference for
//! bit-exact verification, and a Sun 4/330-calibrated cost model:
//!
//! * [`mm::MatMul`] — matrix multiplication (independent iterations).
//! * [`sor::Sor`] — successive overrelaxation (pipelined, loop-carried
//!   dependences, Fig. 3).
//! * [`lu::Lu`] — LU decomposition (shrinking active set, §4.7).
//!
//! Two extensions exercise behaviours the paper discusses but does not
//! evaluate: [`jacobi::Jacobi`] (data-dependent WHILE termination, §4.1)
//! and [`quadrature::Quadrature`] (irregular per-iteration costs, §2.1).

#![forbid(unsafe_code)]
// The kernels mirror the paper's explicit index-based loop nests.
#![allow(clippy::needless_range_loop)]

pub mod calibration;
pub mod jacobi;
pub mod lu;
pub mod mm;
pub mod quadrature;
pub mod sor;

pub use calibration::Calibration;
pub use jacobi::Jacobi;
pub use lu::Lu;
pub use mm::MatMul;
pub use quadrature::Quadrature;
pub use sor::Sor;
