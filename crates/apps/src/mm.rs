//! Matrix multiplication (the paper's MM, Table 1 column 1).
//!
//! `C = A × B`, distributed over the rows of `C` (and the aligned rows of
//! `A`); `B` is replicated on every slave. An application-level repetition
//! count models MM embedded in an outer loop (each rep accumulates another
//! `A×B` into `C`), which is how the paper's Fig. 9 keeps MM running across
//! several load oscillations.

use crate::calibration::{seeded_matrix, Calibration};
use dlb_core::kernels::IndependentKernel;
use dlb_core::msg::UnitData;
use dlb_sim::CpuWork;

/// The MM application: holds the replicated inputs and the cost model.
pub struct MatMul {
    n: usize,
    reps: u64,
    /// Row-major A (rows move with units).
    a: Vec<Vec<f64>>,
    /// Column-major B (replicated), `b[j][k] = B[k][j]` for cache-friendly
    /// dot products.
    b_cols: Vec<Vec<f64>>,
    unit_cost: CpuWork,
}

impl MatMul {
    /// Build an n×n problem with deterministic pseudo-random inputs.
    pub fn new(n: usize, reps: u64, seed: u64, cal: &Calibration) -> MatMul {
        assert!(n > 0 && reps > 0);
        let a = seeded_matrix(n, n, seed ^ 0xA);
        let b = seeded_matrix(n, n, seed ^ 0xB);
        let mut b_cols = vec![vec![0.0; n]; n];
        for (k, row) in b.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                b_cols[j][k] = v;
            }
        }
        // One unit = one row of C = 2n^2 flops.
        let unit_cost = cal.work_for_flops(2.0 * (n as f64) * (n as f64));
        MatMul {
            n,
            reps,
            a,
            b_cols,
            unit_cost,
        }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Sequential reference: the final C, computed in the same operation
    /// order as the parallel engine (bitwise comparable).
    pub fn sequential(&self) -> Vec<Vec<f64>> {
        let mut c = vec![vec![0.0; self.n]; self.n];
        for _rep in 0..self.reps {
            for i in 0..self.n {
                row_step(&self.a[i], &self.b_cols, &mut c[i]);
            }
        }
        c
    }

    /// Sequential execution time on a dedicated reference node.
    pub fn sequential_time(&self) -> dlb_sim::SimDuration {
        (self.unit_cost * (self.n as u64) * self.reps).dedicated_duration(1.0)
    }

    /// Extract C from a gathered run result.
    pub fn result_c(result: &[UnitData]) -> Vec<Vec<f64>> {
        result.iter().map(|u| u[1].clone()).collect()
    }

    /// The matching IR program (drives the compiler).
    pub fn program(&self) -> dlb_compiler::Program {
        dlb_compiler::programs::matmul(self.n as i64, self.reps as i64)
    }
}

/// One invocation's work for one row: `c_row += a_row × B`.
fn row_step(a_row: &[f64], b_cols: &[Vec<f64>], c_row: &mut [f64]) {
    for (j, c) in c_row.iter_mut().enumerate() {
        let col = &b_cols[j];
        let mut acc = 0.0;
        for (av, bv) in a_row.iter().zip(col) {
            acc += av * bv;
        }
        *c += acc;
    }
}

impl IndependentKernel for MatMul {
    fn n_units(&self) -> usize {
        self.n
    }

    fn invocations(&self) -> u64 {
        self.reps
    }

    fn init_unit(&self, idx: usize) -> UnitData {
        vec![self.a[idx].clone(), vec![0.0; self.n]]
    }

    fn compute(&self, _idx: usize, unit: &mut UnitData, _invocation: u64) {
        let (a_row, c_row) = {
            let (first, rest) = unit.split_first_mut().expect("unit has [a, c]");
            (first, &mut rest[0])
        };
        row_step(a_row, &self.b_cols, c_row);
    }

    fn unit_cost(&self) -> CpuWork {
        self.unit_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_naive() {
        let cal = Calibration::default();
        let mm = MatMul::new(8, 1, 42, &cal);
        let c = mm.sequential();
        // Naive triple loop.
        for i in 0..8 {
            for j in 0..8 {
                let mut acc = 0.0;
                for k in 0..8 {
                    acc += mm.a[i][k] * mm.b_cols[j][k];
                }
                assert!((c[i][j] - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn reps_accumulate() {
        let cal = Calibration::default();
        let once = MatMul::new(6, 1, 7, &cal).sequential();
        let thrice = MatMul::new(6, 3, 7, &cal).sequential();
        for i in 0..6 {
            for j in 0..6 {
                assert!((thrice[i][j] - 3.0 * once[i][j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn kernel_compute_matches_sequential_row() {
        let cal = Calibration::default();
        let mm = MatMul::new(10, 2, 3, &cal);
        let seq = mm.sequential();
        for i in 0..10 {
            let mut unit = mm.init_unit(i);
            mm.compute(i, &mut unit, 0);
            mm.compute(i, &mut unit, 1);
            assert_eq!(unit[1], seq[i], "row {i}");
        }
    }

    #[test]
    fn cost_calibration() {
        // n=500 at 1 MFLOP/s: unit = 2*500^2 flops = 0.5 s; 500 units = 250 s.
        let mm = MatMul::new(500, 1, 0, &Calibration { mflops: 1.0 });
        assert_eq!(mm.unit_cost().as_secs_f64(), 0.5);
        assert_eq!(mm.sequential_time().as_secs_f64(), 250.0);
    }
}
