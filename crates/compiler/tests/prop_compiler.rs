//! Property tests for the compiler layer: affine algebra laws, strip-mine
//! cost preservation, and interchange round-trips.

use dlb_compiler::{interchange, programs, strip_mine, Affine};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_affine() -> impl Strategy<Value = Affine> {
    (
        -50i64..50,
        proptest::collection::btree_map(
            prop_oneof![Just("i".to_string()), Just("j".to_string()), Just("n".to_string())],
            -5i64..5,
            0..3,
        ),
    )
        .prop_map(|(c, terms)| {
            let mut e = Affine::constant(c);
            for (v, k) in terms {
                e = e + Affine::scaled_var(v, k);
            }
            e
        })
}

fn env(i: i64, j: i64, n: i64) -> BTreeMap<String, i64> {
    [("i", i), ("j", j), ("n", n)]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

proptest! {
    /// Evaluation is a ring homomorphism: eval(a + b) = eval(a) + eval(b),
    /// eval(k·a) = k·eval(a), eval(a − b) = eval(a) − eval(b).
    #[test]
    fn affine_eval_homomorphism(
        a in arb_affine(),
        b in arb_affine(),
        k in -6i64..6,
        i in -10i64..10,
        j in -10i64..10,
        n in 1i64..100,
    ) {
        let e = env(i, j, n);
        let ea = a.eval(&e).unwrap();
        let eb = b.eval(&e).unwrap();
        prop_assert_eq!((a.clone() + b.clone()).eval(&e).unwrap(), ea + eb);
        prop_assert_eq!((a.clone() - b.clone()).eval(&e).unwrap(), ea - eb);
        prop_assert_eq!((a.clone() * k).eval(&e).unwrap(), ea * k);
        prop_assert_eq!((-a.clone()).eval(&e).unwrap(), -ea);
    }

    /// Addition is commutative and subtraction of self is zero (canonical
    /// representation: semantic equality is structural equality).
    #[test]
    fn affine_canonical_form(a in arb_affine(), b in arb_affine()) {
        prop_assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
        let zero = a.clone() - a.clone();
        prop_assert!(zero.is_constant());
        prop_assert_eq!(zero.constant, 0);
    }

    /// Strip mining never loses cost and overshoots by at most one block's
    /// worth of the innermost loop (the runtime clamps the last block).
    #[test]
    fn strip_mine_cost_bound(n in 8i64..200, block in 1i64..64) {
        let p = programs::matmul(n, 1);
        let sm = strip_mine(&p, "k", block).unwrap();
        sm.validate().unwrap();
        let orig = p.estimate_cost(&p.body, &p.default_env());
        let strip = sm.estimate_cost(&sm.body, &sm.default_env());
        prop_assert!(strip >= orig);
        // Overshoot bounded by (block - remainder) extra k-iterations per
        // (i, j) pair.
        let max_over = orig / (n as f64) * (block as f64);
        prop_assert!(strip - orig <= max_over + 1e-6, "{} vs {}", strip, orig);
    }

    /// A legal interchange applied twice restores the original statement
    /// nesting order.
    #[test]
    fn interchange_is_an_involution(n in 4i64..64) {
        let p = programs::matmul(n, 1);
        let once = interchange(&p, "j", "k").unwrap();
        // After the swap the loops' names move: the outer of the pair is
        // now `k`; swap back.
        let twice = interchange(&once, "k", "j").unwrap();
        let orig: Vec<Vec<&str>> = p.statements().into_iter().map(|(s, _)| s).collect();
        let round: Vec<Vec<&str>> = twice.statements().into_iter().map(|(s, _)| s).collect();
        prop_assert_eq!(orig, round);
    }

    /// Compiling any valid MM/SOR/LU size yields a plan whose unit count
    /// matches the distributed loop extent.
    #[test]
    fn plan_units_match_extent(n in 4i64..300) {
        let mm = dlb_compiler::compile(&programs::matmul(n, 1)).unwrap();
        prop_assert_eq!(mm.n_units, n as u64);
        let sor = dlb_compiler::compile(&programs::sor(n.max(8), 2)).unwrap();
        prop_assert_eq!(sor.n_units, (n.max(8) - 2) as u64);
        let lu = dlb_compiler::compile(&programs::lu(n.max(4))).unwrap();
        prop_assert_eq!(lu.n_units, (n.max(4) - 1) as u64);
    }
}
