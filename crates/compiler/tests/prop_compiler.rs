//! Randomized property tests for the compiler layer: affine algebra laws,
//! strip-mine cost preservation, and interchange round-trips. Driven by
//! deterministic PCG-seeded loops so the suite needs no external
//! property-testing dependency.

use dlb_compiler::{interchange, programs, strip_mine, Affine};
use dlb_sim::Pcg32;
use std::collections::BTreeMap;

const CASES: u64 = 250;

fn random_affine(rng: &mut Pcg32) -> Affine {
    let c = rng.gen_range(0, 100) as i64 - 50;
    let mut e = Affine::constant(c);
    for _ in 0..rng.gen_range(0, 3) {
        let v = ["i", "j", "n"][rng.gen_index(0, 3)];
        let k = rng.gen_range(0, 10) as i64 - 5;
        e = e + Affine::scaled_var(v.to_string(), k);
    }
    e
}

fn env(i: i64, j: i64, n: i64) -> BTreeMap<String, i64> {
    [("i", i), ("j", j), ("n", n)]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Evaluation is a ring homomorphism: eval(a + b) = eval(a) + eval(b),
/// eval(k·a) = k·eval(a), eval(a − b) = eval(a) − eval(b).
#[test]
fn affine_eval_homomorphism() {
    let mut rng = Pcg32::new(0xAFF1);
    for _ in 0..CASES {
        let a = random_affine(&mut rng);
        let b = random_affine(&mut rng);
        let k = rng.gen_range(0, 12) as i64 - 6;
        let i = rng.gen_range(0, 20) as i64 - 10;
        let j = rng.gen_range(0, 20) as i64 - 10;
        let n = 1 + rng.gen_range(0, 99) as i64;
        let e = env(i, j, n);
        let ea = a.eval(&e).unwrap();
        let eb = b.eval(&e).unwrap();
        assert_eq!((a.clone() + b.clone()).eval(&e).unwrap(), ea + eb);
        assert_eq!((a.clone() - b.clone()).eval(&e).unwrap(), ea - eb);
        assert_eq!((a.clone() * k).eval(&e).unwrap(), ea * k);
        assert_eq!((-a.clone()).eval(&e).unwrap(), -ea);
    }
}

/// Addition is commutative and subtraction of self is zero (canonical
/// representation: semantic equality is structural equality).
#[test]
fn affine_canonical_form() {
    let mut rng = Pcg32::new(0xCA20);
    for _ in 0..CASES {
        let a = random_affine(&mut rng);
        let b = random_affine(&mut rng);
        assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
        let zero = a.clone() - a.clone();
        assert!(zero.is_constant());
        assert_eq!(zero.constant, 0);
    }
}

/// Strip mining never loses cost and overshoots by at most one block's
/// worth of the innermost loop (the runtime clamps the last block).
#[test]
fn strip_mine_cost_bound() {
    let mut rng = Pcg32::new(0x57217);
    for _ in 0..CASES {
        let n = 8 + rng.gen_range(0, 192) as i64;
        let block = 1 + rng.gen_range(0, 63) as i64;
        let p = programs::matmul(n, 1);
        let sm = strip_mine(&p, "k", block).unwrap();
        sm.validate().unwrap();
        let orig = p.estimate_cost(&p.body, &p.default_env());
        let strip = sm.estimate_cost(&sm.body, &sm.default_env());
        assert!(strip >= orig);
        // Overshoot bounded by (block - remainder) extra k-iterations per
        // (i, j) pair.
        let max_over = orig / (n as f64) * (block as f64);
        assert!(strip - orig <= max_over + 1e-6, "{strip} vs {orig}");
    }
}

/// A legal interchange applied twice restores the original statement
/// nesting order.
#[test]
fn interchange_is_an_involution() {
    let mut rng = Pcg32::new(0x12C4A);
    for _ in 0..CASES {
        let n = 4 + rng.gen_range(0, 60) as i64;
        let p = programs::matmul(n, 1);
        let once = interchange(&p, "j", "k").unwrap();
        // After the swap the loops' names move: the outer of the pair is
        // now `k`; swap back.
        let twice = interchange(&once, "k", "j").unwrap();
        let orig: Vec<Vec<&str>> = p.statements().into_iter().map(|(s, _)| s).collect();
        let round: Vec<Vec<&str>> = twice.statements().into_iter().map(|(s, _)| s).collect();
        assert_eq!(orig, round);
    }
}

/// Compiling any valid MM/SOR/LU size yields a plan whose unit count
/// matches the distributed loop extent.
#[test]
fn plan_units_match_extent() {
    let mut rng = Pcg32::new(0x9141);
    for _ in 0..CASES {
        let n = 4 + rng.gen_range(0, 296) as i64;
        let mm = dlb_compiler::compile(&programs::matmul(n, 1)).unwrap();
        assert_eq!(mm.n_units, n as u64);
        let sor = dlb_compiler::compile(&programs::sor(n.max(8), 2)).unwrap();
        assert_eq!(sor.n_units, (n.max(8) - 2) as u64);
        let lu = dlb_compiler::compile(&programs::lu(n.max(4))).unwrap();
        assert_eq!(lu.n_units, (n.max(4) - 1) as u64);
    }
}
