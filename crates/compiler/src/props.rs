//! Application-property extraction — the paper's Table 1.
//!
//! §2.1 identifies six properties of the distributed loop that shape the
//! load balancer's behaviour. All six are derivable from the IR:
//!
//! | property                       | MM  | SOR | LU  |
//! |--------------------------------|-----|-----|-----|
//! | loop-carried dependences       | no  | yes | no  |
//! | communication outside loop     | no  | yes | yes |
//! | repeated execution of loop     | yes | yes | yes |
//! | varying loop bounds            | no  | no  | yes |
//! | index-dependent iteration size | no  | no  | yes |
//! | data-dependent iteration size  | no  | no  | no  |

use crate::deps::{self, DepAnalysis};
use crate::ir::{LoopKind, Node, Program};
use std::fmt;

/// The six Table-1 properties of a program's distributed loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppProperties {
    /// The distributed loop carries data dependences, so iteration order
    /// crosses processors and work movement must preserve blocks.
    pub loop_carried_deps: bool,
    /// Some communication happens outside the distributed loop (per-sweep
    /// boundary exchange, pivot broadcast, ...).
    pub communication_outside_loop: bool,
    /// The distributed loop executes repeatedly (it is nested inside an
    /// outer loop), so moved data is reused and movement pays off more.
    pub repeated_execution: bool,
    /// The distributed loop's bounds depend on outer loop indices, so the
    /// set of *active* iterations changes at run time (§4.7).
    pub varying_loop_bounds: bool,
    /// The work per distributed iteration depends on loop indices.
    pub index_dependent_iteration_size: bool,
    /// The work per distributed iteration depends on data values
    /// (conditionals, data-dependent inner loops).
    pub data_dependent_iteration_size: bool,
}

impl AppProperties {
    /// Derive all six properties from a validated program. The dependence
    /// analysis is recomputed; use [`derive_with`] to supply one.
    pub fn derive(program: &Program) -> AppProperties {
        derive_with(program, &deps::analyze(program))
    }
}

/// Derive Table-1 properties given a pre-computed dependence analysis.
pub fn derive_with(program: &Program, da: &DepAnalysis) -> AppProperties {
    let path = program.path_to_distributed();
    assert!(
        !path.is_empty(),
        "program must have a distributed loop (validate first)"
    );
    let dloop = *path.last().expect("nonempty");
    let enclosing: Vec<&str> = path[..path.len() - 1]
        .iter()
        .map(|l| l.var.as_str())
        .collect();

    let loop_carried = da.has_carried();
    // Communication outside the distributed loop arises from (a) values
    // shared across all iterations (broadcast, e.g. LU's pivot column), or
    // (b) carried dependences combined with repetition: the previous sweep's
    // boundary values must be exchanged before each new sweep (SOR's
    // column sends in Fig. 3).
    let repeated = !enclosing.is_empty();
    let comm_outside = da.has_global() || (loop_carried && repeated);

    let varying_bounds = dloop.lower.uses_any(enclosing.iter().copied())
        || dloop.upper.uses_any(enclosing.iter().copied())
        || matches!(dloop.kind, LoopKind::WhileData { .. });

    let mut index_dep = false;
    let mut data_dep = false;
    scan_iteration_size(
        &dloop.body,
        &dloop.var,
        &enclosing,
        &mut index_dep,
        &mut data_dep,
    );

    AppProperties {
        loop_carried_deps: loop_carried,
        communication_outside_loop: comm_outside,
        repeated_execution: repeated,
        varying_loop_bounds: varying_bounds,
        index_dependent_iteration_size: index_dep,
        data_dependent_iteration_size: data_dep,
    }
}

/// Walk the distributed loop body looking for inner loops whose bounds use
/// the distributed variable or an enclosing index (index-dependent size),
/// and for conditionals or data-dependent loops (data-dependent size).
fn scan_iteration_size(
    nodes: &[Node],
    dvar: &str,
    enclosing: &[&str],
    index_dep: &mut bool,
    data_dep: &mut bool,
) {
    for node in nodes {
        match node {
            Node::Stmt(s) => {
                if s.conditional {
                    *data_dep = true;
                }
            }
            Node::Loop(l) => {
                let vars_of_interest = enclosing.iter().copied().chain(std::iter::once(dvar));
                for v in vars_of_interest {
                    if l.lower.uses(v) || l.upper.uses(v) {
                        *index_dep = true;
                    }
                }
                if matches!(l.kind, LoopKind::WhileData { .. }) {
                    *data_dep = true;
                }
                scan_iteration_size(&l.body, dvar, enclosing, index_dep, data_dep);
            }
        }
    }
}

impl fmt::Display for AppProperties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let yn = |b: bool| if b { "yes" } else { "no" };
        writeln!(
            f,
            "loop-carried dependences       {}",
            yn(self.loop_carried_deps)
        )?;
        writeln!(
            f,
            "communication outside loop     {}",
            yn(self.communication_outside_loop)
        )?;
        writeln!(
            f,
            "repeated execution of loop     {}",
            yn(self.repeated_execution)
        )?;
        writeln!(
            f,
            "varying loop bounds            {}",
            yn(self.varying_loop_bounds)
        )?;
        writeln!(
            f,
            "index-dependent iteration size {}",
            yn(self.index_dependent_iteration_size)
        )?;
        write!(
            f,
            "data-dependent iteration size  {}",
            yn(self.data_dependent_iteration_size)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::build::*;
    use crate::programs;

    /// Table 1, MM column.
    #[test]
    fn matmul_properties() {
        let p = programs::matmul(64, 3);
        let got = AppProperties::derive(&p);
        assert_eq!(
            got,
            AppProperties {
                loop_carried_deps: false,
                communication_outside_loop: false,
                repeated_execution: true,
                varying_loop_bounds: false,
                index_dependent_iteration_size: false,
                data_dependent_iteration_size: false,
            }
        );
    }

    /// Table 1, SOR column.
    #[test]
    fn sor_properties() {
        let p = programs::sor(64, 4);
        let got = AppProperties::derive(&p);
        assert_eq!(
            got,
            AppProperties {
                loop_carried_deps: true,
                communication_outside_loop: true,
                repeated_execution: true,
                varying_loop_bounds: false,
                index_dependent_iteration_size: false,
                data_dependent_iteration_size: false,
            }
        );
    }

    /// Table 1, LU column.
    #[test]
    fn lu_properties() {
        let p = programs::lu(64);
        let got = AppProperties::derive(&p);
        assert_eq!(
            got,
            AppProperties {
                loop_carried_deps: false,
                communication_outside_loop: true,
                repeated_execution: true,
                varying_loop_bounds: true,
                index_dependent_iteration_size: true,
                data_dependent_iteration_size: false,
            }
        );
    }

    #[test]
    fn conditional_statement_is_data_dependent() {
        let mut p = programs::matmul(16, 1);
        // Mark the innermost statement conditional.
        fn mark(nodes: &mut [crate::ir::Node]) {
            for n in nodes {
                match n {
                    crate::ir::Node::Stmt(s) => s.conditional = true,
                    crate::ir::Node::Loop(l) => mark(&mut l.body),
                }
            }
        }
        mark(&mut p.body);
        assert!(AppProperties::derive(&p).data_dependent_iteration_size);
    }

    #[test]
    fn while_inside_distributed_loop_is_data_dependent() {
        let n = crate::affine::Affine::var("n");
        let p = crate::ir::Program {
            name: "conv".into(),
            params: vec![param("n", 64)],
            arrays: vec![array("x", vec![n.clone()])],
            body: vec![for_loop(
                "i",
                0i64,
                n.clone(),
                vec![while_loop(
                    "w",
                    10,
                    100i64,
                    vec![stmt(
                        "refine",
                        vec![aref("x", vec![crate::affine::Affine::var("i")])],
                        vec![aref("x", vec![crate::affine::Affine::var("i")])],
                        1.0,
                    )],
                )],
            )],
            distributed_var: "i".into(),
            distributed_array: "x".into(),
            distributed_dim: 0,
        };
        p.validate().unwrap();
        let props = AppProperties::derive(&p);
        assert!(props.data_dependent_iteration_size);
        assert!(!props.repeated_execution); // outermost distributed loop
    }

    #[test]
    fn display_renders_table_rows() {
        let p = programs::sor(16, 2);
        let text = format!("{}", AppProperties::derive(&p));
        assert!(text.contains("loop-carried dependences       yes"));
        assert!(text.contains("varying loop bounds            no"));
    }
}
