//! Plan generation: everything the run-time system needs, derived from the
//! IR (the paper's Table 2 compiler tasks).
//!
//! [`compile`] runs dependence analysis, property extraction, and hook
//! placement, classifies the program into one of three execution patterns,
//! decides the work-movement rule, and describes which arrays move with a
//! work unit — the compiler-generated "application-specific routines for
//! work movement" of §4.5, here in descriptor form.

use crate::deps::{self, DepAnalysis};
use crate::hooks::{self, HookPlacement};
use crate::ir::{IrError, LoopKind, Node, Program};
use crate::props::{self, AppProperties};
use crate::stripmine::GRAIN_QUANTUM_FACTOR;

/// How the slaves execute the distributed loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// Iterations are independent (MM): compute local units between hooks.
    Independent,
    /// Loop-carried nearest-neighbour dependences (SOR): wavefront pipeline
    /// with per-block boundary exchange and strip-mined grain control.
    Pipelined,
    /// Independent iterations whose active set shrinks with an outer loop
    /// (LU): broadcast each step, track active/inactive slices (§4.7).
    Shrinking,
}

/// Work-movement restriction (§3.2, Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MovementRule {
    /// Work may move directly between any two slaves (Fig. 1a).
    Direct,
    /// Work may only shift between logically adjacent slaves so the block
    /// distribution is preserved (Fig. 1b).
    AdjacentOnly,
}

/// How the block size of the pipelined loop is chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GrainPolicy {
    /// One unit at a time (no strip mining needed).
    Unit,
    /// Strip-mine so one block ≈ `quantum_factor` × OS quantum, measured at
    /// startup (§4.4).
    AutoBlock { quantum_factor: f64 },
    /// Fixed block size (for ablation experiments).
    FixedBlock { iterations: u64 },
}

/// The master's control obligations (§4.1): it must invoke the central
/// balancing code once per distributed-loop invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OuterControl {
    /// The distributed loop runs exactly once.
    Single,
    /// A compile-time-known number of invocations.
    Fixed(u64),
    /// Data-dependent (WHILE): the master mimics the loop at run time;
    /// the estimate is for cost models only.
    DataDependent { est: u64 },
}

/// An array that travels with a work unit when work moves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MovedArray {
    pub name: String,
    /// Which dimension is indexed by the distributed variable.
    pub dim: usize,
    /// Bytes of this array per work unit.
    pub bytes_per_unit: u64,
}

/// Pipeline description for [`Pattern::Pipelined`] programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineSpec {
    /// The loop the pipeline advances along (SOR's row loop `i`).
    pub inner_var: String,
    /// Trip count of that loop (with default parameters).
    pub inner_trips: u64,
    /// True if iterations also read their right neighbour's *previous*
    /// values, requiring an old-value exchange at each invocation start
    /// (SOR's sweep-start column send).
    pub needs_old_neighbor: bool,
}

/// The compiler's output: a complete execution + balancing plan.
#[derive(Clone, Debug)]
pub struct ParallelPlan {
    pub program: String,
    pub pattern: Pattern,
    pub movement: MovementRule,
    pub props: AppProperties,
    pub hooks: HookPlacement,
    pub grain: GrainPolicy,
    pub outer: OuterControl,
    /// Distributed-loop trip count on the first invocation.
    pub n_units: u64,
    /// Estimated flops per work unit on the first invocation.
    pub unit_flops: f64,
    /// Arrays that move with a unit, and their per-unit sizes.
    pub moved_arrays: Vec<MovedArray>,
    /// Arrays replicated on every slave (never moved).
    pub replicated_arrays: Vec<String>,
    /// Total bytes moved per work unit.
    pub unit_bytes: u64,
    /// Present for pipelined programs.
    pub pipeline: Option<PipelineSpec>,
    /// The dependence analysis the classification was derived from, kept on
    /// the plan so downstream consumers (`dlb-analyze`'s linter) can audit
    /// the pattern/movement decisions without re-running the compiler.
    pub deps: DepAnalysis,
}

/// Compilation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    Invalid(IrError),
    /// Carried dependences with |distance| > 1 or unknown distance: the
    /// pipelined engine only supports nearest-neighbour pipelines.
    UnsupportedDependences(String),
    /// The distributed loop has no iterations under default parameters.
    EmptyDistributedLoop,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Invalid(e) => write!(f, "invalid program: {e}"),
            CompileError::UnsupportedDependences(s) => {
                write!(f, "unsupported dependence pattern: {s}")
            }
            CompileError::EmptyDistributedLoop => write!(f, "distributed loop has no iterations"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile a program into a [`ParallelPlan`].
pub fn compile(program: &Program) -> Result<ParallelPlan, CompileError> {
    program.validate().map_err(CompileError::Invalid)?;
    let da = deps::analyze(program);
    let props = props::derive_with(program, &da);

    let pattern = if props.loop_carried_deps {
        if !da.nearest_neighbor_only() {
            return Err(CompileError::UnsupportedDependences(format!(
                "carried distances {:?}",
                da.carried_distances()
            )));
        }
        Pattern::Pipelined
    } else if props.varying_loop_bounds {
        Pattern::Shrinking
    } else {
        Pattern::Independent
    };

    let movement = if props.loop_carried_deps {
        MovementRule::AdjacentOnly
    } else {
        MovementRule::Direct
    };

    let hooks = match pattern {
        Pattern::Pipelined => hooks::place_hooks_pipelined(program),
        _ => hooks::place_hooks(program),
    };

    let grain = match pattern {
        Pattern::Pipelined => GrainPolicy::AutoBlock {
            quantum_factor: GRAIN_QUANTUM_FACTOR,
        },
        _ => GrainPolicy::Unit,
    };

    // First-invocation environment: enclosing loop vars at their lower
    // bounds.
    let mut env = program.default_env();
    let path = program.path_to_distributed();
    let enclosing = &path[..path.len() - 1];
    let mut outer_invocations: u64 = 1;
    let mut data_dependent = false;
    for l in enclosing {
        let trips = program.estimate_trips(l, &env).max(0) as u64;
        outer_invocations = outer_invocations.saturating_mul(trips.max(1));
        if matches!(l.kind, LoopKind::WhileData { .. }) {
            data_dependent = true;
        }
        let lo = l.lower.eval(&env).unwrap_or(0);
        env.insert(l.var.clone(), lo);
    }
    let outer = if enclosing.is_empty() {
        OuterControl::Single
    } else if data_dependent {
        OuterControl::DataDependent {
            est: outer_invocations,
        }
    } else {
        OuterControl::Fixed(outer_invocations)
    };

    let dloop = path[path.len() - 1];
    let n_units = program.estimate_trips(dloop, &env).max(0) as u64;
    if n_units == 0 {
        return Err(CompileError::EmptyDistributedLoop);
    }
    let unit_flops = {
        let mut e = env.clone();
        let lo = dloop.lower.eval(&env).unwrap_or(0);
        e.insert(dloop.var.clone(), lo + n_units as i64 / 2);
        program.estimate_cost(&dloop.body, &e)
    };

    let (moved_arrays, replicated_arrays, unit_bytes) = classify_arrays(program, &env);

    let pipeline = if pattern == Pattern::Pipelined {
        let inner = dloop
            .body
            .iter()
            .find_map(|n| match n {
                Node::Loop(l) => Some(l),
                _ => None,
            })
            .ok_or_else(|| {
                CompileError::UnsupportedDependences(
                    "pipelined loop without an inner loop to pipeline along".into(),
                )
            })?;
        let mut e = env.clone();
        let lo = dloop.lower.eval(&env).unwrap_or(0);
        e.insert(dloop.var.clone(), lo);
        let inner_trips = program.estimate_trips(inner, &e).max(0) as u64;
        // Reads with negative distance consume the neighbour's previous
        // values -> old-value exchange at each sweep start.
        let needs_old = da
            .deps
            .iter()
            .any(|d| matches!(d.distance, deps::Distance::Const(k) if k < 0));
        Some(PipelineSpec {
            inner_var: inner.var.clone(),
            inner_trips,
            needs_old_neighbor: needs_old,
        })
    } else {
        None
    };

    Ok(ParallelPlan {
        program: program.name.clone(),
        pattern,
        movement,
        props,
        hooks,
        grain,
        outer,
        n_units,
        unit_flops,
        moved_arrays,
        replicated_arrays,
        unit_bytes,
        pipeline,
        deps: da,
    })
}

/// Decide, per array, whether it moves with work units (aligned with the
/// distributed variable) or is replicated. Owner-computes: an array is
/// aligned if its *writes* subscript the distributed variable in a
/// consistent dimension; a read-only array is aligned if all its reads do.
fn classify_arrays(
    program: &Program,
    env: &std::collections::BTreeMap<String, i64>,
) -> (Vec<MovedArray>, Vec<String>, u64) {
    let dvar = program.distributed_var.as_str();
    let stmts = program.statements();
    let mut moved = Vec::new();
    let mut replicated = Vec::new();
    let mut total_bytes = 0u64;
    for decl in &program.arrays {
        let mut write_dims: Vec<usize> = Vec::new();
        let mut read_dims: Vec<usize> = Vec::new();
        let mut has_write = false;
        let mut has_read = false;
        for (_, s) in &stmts {
            for w in &s.writes {
                if w.array == decl.name {
                    has_write = true;
                    if let Some(d) = w.subs.iter().position(|sub| sub.uses(dvar)) {
                        write_dims.push(d);
                    }
                }
            }
            for r in &s.reads {
                if r.array == decl.name {
                    has_read = true;
                    if let Some(d) = r.subs.iter().position(|sub| sub.uses(dvar)) {
                        read_dims.push(d);
                    }
                }
            }
        }
        write_dims.sort_unstable();
        write_dims.dedup();
        read_dims.sort_unstable();
        read_dims.dedup();
        let aligned_dim = if has_write && write_dims.len() == 1 {
            Some(write_dims[0])
        } else if !has_write && has_read && read_dims.len() == 1 {
            Some(read_dims[0])
        } else {
            None
        };
        match aligned_dim {
            Some(dim) => {
                let mut bytes = decl.elem_bytes;
                for (d, extent) in decl.dims.iter().enumerate() {
                    if d != dim {
                        bytes = bytes.saturating_mul(extent.eval(env).unwrap_or(1).max(1) as u64);
                    }
                }
                total_bytes += bytes;
                moved.push(MovedArray {
                    name: decl.name.clone(),
                    dim,
                    bytes_per_unit: bytes,
                });
            }
            None => replicated.push(decl.name.clone()),
        }
    }
    (moved, replicated, total_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn matmul_plan() {
        let plan = compile(&programs::matmul(500, 2)).unwrap();
        assert_eq!(plan.pattern, Pattern::Independent);
        assert_eq!(plan.movement, MovementRule::Direct);
        assert_eq!(plan.outer, OuterControl::Fixed(2));
        assert_eq!(plan.n_units, 500);
        assert_eq!(plan.unit_flops, 2.0 * 500.0 * 500.0);
        assert_eq!(plan.grain, GrainPolicy::Unit);
        // c and a move with a row; b is replicated.
        let names: Vec<&str> = plan.moved_arrays.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c"]);
        assert_eq!(plan.replicated_arrays, vec!["b"]);
        assert_eq!(plan.unit_bytes, 2 * 500 * 8);
        assert!(plan.pipeline.is_none());
    }

    #[test]
    fn sor_plan() {
        let plan = compile(&programs::sor(2000, 15)).unwrap();
        assert_eq!(plan.pattern, Pattern::Pipelined);
        assert_eq!(plan.movement, MovementRule::AdjacentOnly);
        assert_eq!(plan.outer, OuterControl::Fixed(15));
        assert_eq!(plan.n_units, 1998);
        assert!(matches!(plan.grain, GrainPolicy::AutoBlock { .. }));
        let pipe = plan.pipeline.as_ref().unwrap();
        assert_eq!(pipe.inner_var, "i");
        assert_eq!(pipe.inner_trips, 1998);
        assert!(pipe.needs_old_neighbor);
        assert_eq!(plan.unit_bytes, 2000 * 8); // one column of b
    }

    #[test]
    fn lu_plan() {
        let plan = compile(&programs::lu(500)).unwrap();
        assert_eq!(plan.pattern, Pattern::Shrinking);
        assert_eq!(plan.movement, MovementRule::Direct);
        assert_eq!(plan.outer, OuterControl::Fixed(499));
        assert_eq!(plan.n_units, 499); // first invocation: j in 1..500
        let names: Vec<&str> = plan.moved_arrays.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a"]);
    }

    #[test]
    fn invalid_program_rejected() {
        let mut p = programs::matmul(16, 1);
        p.distributed_var = "nope".into();
        assert!(matches!(compile(&p), Err(CompileError::Invalid(_))));
    }

    #[test]
    fn long_distance_dependences_rejected() {
        use crate::ir::build::*;
        let n = crate::affine::Affine::var("n");
        let i = crate::affine::Affine::var("i");
        let p = crate::ir::Program {
            name: "stride2".into(),
            params: vec![param("n", 64)],
            arrays: vec![array("x", vec![n.clone()])],
            body: vec![for_loop(
                "t",
                0i64,
                4i64,
                vec![for_loop(
                    "i",
                    2i64,
                    n.clone(),
                    vec![stmt(
                        "x[i] = x[i-2]",
                        vec![aref("x", vec![i.clone()])],
                        vec![aref("x", vec![i.clone() + (-2)])],
                        1.0,
                    )],
                )],
            )],
            distributed_var: "i".into(),
            distributed_array: "x".into(),
            distributed_dim: 0,
        };
        assert!(matches!(
            compile(&p),
            Err(CompileError::UnsupportedDependences(_))
        ));
    }

    #[test]
    fn while_outer_is_data_dependent_control() {
        use crate::ir::build::*;
        let n = crate::affine::Affine::var("n");
        let i = crate::affine::Affine::var("i");
        let p = crate::ir::Program {
            name: "iterate".into(),
            params: vec![param("n", 64)],
            arrays: vec![array("x", vec![n.clone()])],
            body: vec![while_loop(
                "t",
                25,
                1000i64,
                vec![for_loop(
                    "i",
                    0i64,
                    n.clone(),
                    vec![stmt(
                        "x[i] = f(x[i])",
                        vec![aref("x", vec![i.clone()])],
                        vec![aref("x", vec![i.clone()])],
                        3.0,
                    )],
                )],
            )],
            distributed_var: "i".into(),
            distributed_array: "x".into(),
            distributed_dim: 0,
        };
        let plan = compile(&p).unwrap();
        assert_eq!(plan.outer, OuterControl::DataDependent { est: 25 });
        assert_eq!(plan.pattern, Pattern::Independent);
    }
}
