//! Loop restructuring transformations (§2.2).
//!
//! "If synchronization occurs frequently, short-term skews in processing
//! times accumulate and degrade performance. If possible, the code should
//! be restructured, e.g., by strip mining, loop interchange, etc., to
//! minimize the frequency of these synchronizations." — strip mining lives
//! in [`crate::stripmine`]; this module provides **loop interchange** with
//! a direction-vector legality test.
//!
//! Interchange of two perfectly nested loops is legal iff no dependence
//! has direction `(<, >)` over `(outer, inner)` — i.e. no normalized
//! distance vector with a positive outer component and a negative inner
//! component, which the swap would turn into an illegal backward flow.

use crate::deps::{distance_wrt, Distance};
use crate::ir::{Loop, Node, Program, Stmt};

/// Why an interchange was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterchangeError {
    /// No loop with this variable exists.
    NoSuchLoop(String),
    /// `inner` is not the sole direct loop child of `outer` (the transform
    /// requires a perfect-enough nest).
    NotDirectlyNested { outer: String, inner: String },
    /// A dependence with direction `(<, >)` makes the swap illegal, or a
    /// dependence distance could not be analyzed.
    Illegal { array: String, reason: String },
    /// The inner loop's bounds depend on the outer variable (a triangular
    /// nest; interchange would need bound rewriting we do not perform).
    TriangularBounds,
}

impl std::fmt::Display for InterchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterchangeError::NoSuchLoop(v) => write!(f, "no loop `{v}`"),
            InterchangeError::NotDirectlyNested { outer, inner } => {
                write!(f, "`{inner}` is not directly nested in `{outer}`")
            }
            InterchangeError::Illegal { array, reason } => {
                write!(f, "illegal interchange: dependence on `{array}` ({reason})")
            }
            InterchangeError::TriangularBounds => {
                write!(f, "inner bounds depend on the outer variable")
            }
        }
    }
}

impl std::error::Error for InterchangeError {}

/// Signed dependence direction over one loop variable.
fn dir(a: &crate::ir::ArrayRef, b: &crate::ir::ArrayRef, var: &str) -> Result<i64, String> {
    match distance_wrt(a, b, var) {
        Distance::Zero => Ok(0),
        Distance::Const(d) => Ok(d),
        Distance::Global => Ok(0), // not constrained by this variable
        Distance::Unknown => Err(format!("unanalyzable distance in `{var}`")),
    }
}

/// Check all dependences between statements in `stmts` for interchange
/// legality over `(outer, inner)`.
fn legality(stmts: &[&Stmt], outer: &str, inner: &str) -> Result<(), InterchangeError> {
    for s1 in stmts {
        for w in &s1.writes {
            for s2 in stmts {
                for r in s2.reads.iter().chain(s2.writes.iter()) {
                    if r.array != w.array || std::ptr::eq(w, r) {
                        continue;
                    }
                    let check = |d_out: i64, d_in: i64| -> Result<(), InterchangeError> {
                        // Normalize to source-before-sink: if the leading
                        // component is negative the dependence flows the
                        // other way.
                        let (d_out, d_in) = if d_out < 0 || (d_out == 0 && d_in < 0) {
                            (-d_out, -d_in)
                        } else {
                            (d_out, d_in)
                        };
                        if d_out > 0 && d_in < 0 {
                            return Err(InterchangeError::Illegal {
                                array: w.array.clone(),
                                reason: format!("direction ({d_out:+}, {d_in:+})"),
                            });
                        }
                        Ok(())
                    };
                    match (dir(w, r, outer), dir(w, r, inner)) {
                        (Ok(a), Ok(b)) => check(a, b)?,
                        (Err(e), _) | (_, Err(e)) => {
                            return Err(InterchangeError::Illegal {
                                array: w.array.clone(),
                                reason: e,
                            })
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn collect<'a>(nodes: &'a [Node], out: &mut Vec<&'a Stmt>) {
    for n in nodes {
        match n {
            Node::Stmt(s) => out.push(s),
            Node::Loop(l) => collect(&l.body, out),
        }
    }
}

/// Interchange the loop `outer` with its directly nested loop `inner`,
/// returning the transformed program. Fails if the nest shape or the
/// dependences forbid it.
pub fn interchange(
    program: &Program,
    outer: &str,
    inner: &str,
) -> Result<Program, InterchangeError> {
    // Locate the outer loop and validate the nest shape.
    fn find<'a>(nodes: &'a [Node], var: &str) -> Option<&'a Loop> {
        for n in nodes {
            if let Node::Loop(l) = n {
                if l.var == var {
                    return Some(l);
                }
                if let Some(found) = find(&l.body, var) {
                    return Some(found);
                }
            }
        }
        None
    }
    let outer_loop = find(&program.body, outer)
        .ok_or_else(|| InterchangeError::NoSuchLoop(outer.to_string()))?;
    let inner_loop = outer_loop
        .body
        .iter()
        .find_map(|n| match n {
            Node::Loop(l) if l.var == inner => Some(l),
            _ => None,
        })
        .ok_or_else(|| InterchangeError::NotDirectlyNested {
            outer: outer.to_string(),
            inner: inner.to_string(),
        })?;
    if inner_loop.lower.uses(outer) || inner_loop.upper.uses(outer) {
        return Err(InterchangeError::TriangularBounds);
    }

    // Legality over the statements inside the inner loop.
    let mut stmts = Vec::new();
    collect(&inner_loop.body, &mut stmts);
    legality(&stmts, outer, inner)?;

    // Rebuild with the two loop headers swapped.
    let mut p = program.clone();
    fn swap(nodes: &mut [Node], outer: &str, inner: &str) -> bool {
        for n in nodes.iter_mut() {
            if let Node::Loop(l) = n {
                if l.var == outer {
                    // Take the inner loop out, swap headers.
                    let pos = l
                        .body
                        .iter()
                        .position(|c| matches!(c, Node::Loop(il) if il.var == inner))
                        .expect("validated");
                    if let Node::Loop(mut il) = l.body.remove(pos) {
                        std::mem::swap(&mut l.var, &mut il.var);
                        std::mem::swap(&mut l.lower, &mut il.lower);
                        std::mem::swap(&mut l.upper, &mut il.upper);
                        std::mem::swap(&mut l.kind, &mut il.kind);
                        l.body.insert(pos, Node::Loop(il));
                    }
                    return true;
                }
                if swap(&mut l.body, outer, inner) {
                    return true;
                }
            }
        }
        false
    }
    swap(&mut p.body, outer, inner);
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::build::*;
    use crate::programs;
    use crate::Affine;

    #[test]
    fn sor_interchange_is_legal() {
        // The paper's pipelined SOR codegen relies on (j, i) -> (i, j)
        // being legal: the five-point Gauss-Seidel dataflow is preserved.
        let p = programs::sor(64, 4);
        let q = interchange(&p, "j", "i").expect("legal");
        q.validate().unwrap();
        let chain: Vec<&str> = q
            .path_to_distributed()
            .iter()
            .map(|l| l.var.as_str())
            .collect();
        // The distributed loop `j` is now innermost: path is iter -> i -> j.
        assert_eq!(chain, vec!["iter", "i", "j"]);
        // Cost is unchanged.
        assert_eq!(
            p.estimate_cost(&p.body, &p.default_env()),
            q.estimate_cost(&q.body, &q.default_env())
        );
    }

    #[test]
    fn wavefront_with_backward_inner_dep_is_illegal() {
        // x[i][j] = x[i-1][j+1]: direction (+1, -1) forbids interchange.
        let n = Affine::var("n");
        let i = Affine::var("i");
        let j = Affine::var("j");
        let p = crate::ir::Program {
            name: "skew".into(),
            params: vec![param("n", 16)],
            arrays: vec![array("x", vec![n.clone(), n.clone()])],
            body: vec![for_loop(
                "i",
                1i64,
                n.clone(),
                vec![for_loop(
                    "j",
                    0i64,
                    n.clone() + (-1),
                    vec![stmt(
                        "x[i][j] = x[i-1][j+1]",
                        vec![aref("x", vec![i.clone(), j.clone()])],
                        vec![aref("x", vec![i.clone() + (-1), j.clone() + 1])],
                        1.0,
                    )],
                )],
            )],
            distributed_var: "i".into(),
            distributed_array: "x".into(),
            distributed_dim: 0,
        };
        p.validate().unwrap();
        let err = interchange(&p, "i", "j").unwrap_err();
        assert!(matches!(err, InterchangeError::Illegal { .. }), "{err}");
    }

    #[test]
    fn triangular_nests_are_refused() {
        let p = programs::lu(32);
        // k encloses j, and j's bounds use k.
        let err = interchange(&p, "k", "j").unwrap_err();
        assert_eq!(err, InterchangeError::TriangularBounds);
    }

    #[test]
    fn missing_or_non_nested_loops_are_refused() {
        let p = programs::matmul(8, 1);
        assert!(matches!(
            interchange(&p, "zz", "i"),
            Err(InterchangeError::NoSuchLoop(_))
        ));
        // `k` is nested two levels below `i`, not directly.
        assert!(matches!(
            interchange(&p, "i", "k"),
            Err(InterchangeError::NotDirectlyNested { .. })
        ));
    }

    #[test]
    fn matmul_jk_interchange_legal_and_swaps() {
        let p = programs::matmul(8, 1);
        let q = interchange(&p, "j", "k").expect("reduction reorder is legal");
        q.validate().unwrap();
        // Statement depth order is now rep -> i -> k -> j.
        let stmts = q.statements();
        assert_eq!(stmts[0].0, vec!["rep", "i", "k", "j"]);
    }
}
