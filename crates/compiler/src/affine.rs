//! Affine expressions over loop indices and symbolic parameters.
//!
//! Loop bounds and array subscripts in the IR are affine: a constant plus an
//! integer-weighted sum of variables (loop indices like `i`, `k`, or problem
//! parameters like `n`). Affine form is what makes the dependence and
//! bounds-variation analyses in [`crate::deps`] and [`crate::props`]
//! decidable.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine expression: `constant + Σ coeff·var`.
///
/// Variables are interned by name; a `BTreeMap` keeps the representation
/// canonical (zero coefficients are removed), so `PartialEq` is semantic
/// equality.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Affine {
    pub constant: i64,
    pub terms: BTreeMap<String, i64>,
}

impl Affine {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Affine {
        Affine {
            constant: c,
            terms: BTreeMap::new(),
        }
    }

    /// The expression `1·var`.
    pub fn var(name: impl Into<String>) -> Affine {
        let mut terms = BTreeMap::new();
        terms.insert(name.into(), 1);
        Affine { constant: 0, terms }
    }

    /// The expression `coeff·var`.
    pub fn scaled_var(name: impl Into<String>, coeff: i64) -> Affine {
        let mut terms = BTreeMap::new();
        let name = name.into();
        if coeff != 0 {
            terms.insert(name, coeff);
        }
        Affine { constant: 0, terms }
    }

    fn normalize(mut self) -> Affine {
        self.terms.retain(|_, &mut c| c != 0);
        self
    }

    /// Coefficient of `var` (zero if absent).
    pub fn coeff(&self, var: &str) -> i64 {
        self.terms.get(var).copied().unwrap_or(0)
    }

    /// True if the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// True if `var` appears with a nonzero coefficient.
    pub fn uses(&self, var: &str) -> bool {
        self.coeff(var) != 0
    }

    /// True if any of `vars` appears.
    pub fn uses_any<'a>(&self, vars: impl IntoIterator<Item = &'a str>) -> bool {
        vars.into_iter().any(|v| self.uses(v))
    }

    /// Names of all variables appearing in the expression.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.terms.keys().map(String::as_str)
    }

    /// Evaluate with the given variable bindings; returns `None` if an
    /// unbound variable appears.
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> Option<i64> {
        let mut total = self.constant;
        for (v, &c) in &self.terms {
            total += c * env.get(v)?;
        }
        Some(total)
    }

    /// `self - other` as an affine expression.
    pub fn diff(&self, other: &Affine) -> Affine {
        self.clone() - other.clone()
    }
}

impl Add for Affine {
    type Output = Affine;
    fn add(mut self, rhs: Affine) -> Affine {
        self.constant += rhs.constant;
        for (v, c) in rhs.terms {
            *self.terms.entry(v).or_insert(0) += c;
        }
        self.normalize()
    }
}

impl Sub for Affine {
    type Output = Affine;
    fn sub(self, rhs: Affine) -> Affine {
        self + (-rhs)
    }
}

impl Neg for Affine {
    type Output = Affine;
    fn neg(mut self) -> Affine {
        self.constant = -self.constant;
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self
    }
}

impl Mul<i64> for Affine {
    type Output = Affine;
    fn mul(mut self, k: i64) -> Affine {
        self.constant *= k;
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.normalize()
    }
}

impl Add<i64> for Affine {
    type Output = Affine;
    fn add(mut self, k: i64) -> Affine {
        self.constant += k;
        self
    }
}

impl From<i64> for Affine {
    fn from(c: i64) -> Affine {
        Affine::constant(c)
    }
}

impl From<&str> for Affine {
    fn from(v: &str) -> Affine {
        Affine::var(v)
    }
}

impl fmt::Debug for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, &c) in &self.terms {
            if first {
                match c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    _ => write!(f, "{c}*{v}")?,
                }
                first = false;
            } else {
                match c {
                    1 => write!(f, " + {v}")?,
                    -1 => write!(f, " - {v}")?,
                    c if c > 0 => write!(f, " + {c}*{v}")?,
                    c => write!(f, " - {}*{v}", -c)?,
                }
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> BTreeMap<String, i64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn construction_and_eval() {
        let e = Affine::var("i") + Affine::constant(3);
        assert_eq!(e.eval(&env(&[("i", 4)])), Some(7));
        assert_eq!(e.eval(&env(&[])), None);
        assert_eq!(e.coeff("i"), 1);
        assert!(e.uses("i"));
        assert!(!e.uses("j"));
    }

    #[test]
    fn arithmetic_normalizes() {
        let e = Affine::var("i") - Affine::var("i");
        assert!(e.is_constant());
        assert_eq!(e.constant, 0);
        let e2 = (Affine::var("i") * 2 + Affine::var("j")) - Affine::scaled_var("i", 2);
        assert_eq!(e2, Affine::var("j"));
    }

    #[test]
    fn diff_gives_distance() {
        // Subscript i-1 vs i: distance -1.
        let w = Affine::var("i") + Affine::constant(-1);
        let r = Affine::var("i");
        let d = w.diff(&r);
        assert!(d.is_constant());
        assert_eq!(d.constant, -1);
    }

    #[test]
    fn scaled_var_zero_is_constant() {
        assert!(Affine::scaled_var("i", 0).is_constant());
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Affine::constant(5)), "5");
        assert_eq!(format!("{}", Affine::var("i")), "i");
        assert_eq!(
            format!("{}", Affine::var("i") + Affine::constant(-1)),
            "i - 1"
        );
        assert_eq!(
            format!(
                "{}",
                Affine::scaled_var("n", 2) + Affine::var("i") + Affine::constant(3)
            ),
            "i + 2*n + 3"
        );
        assert_eq!(format!("{}", -Affine::var("i")), "-i");
    }

    #[test]
    fn vars_iterates() {
        let e = Affine::var("a") + Affine::var("b");
        let vs: Vec<&str> = e.vars().collect();
        assert_eq!(vs, vec!["a", "b"]);
    }
}
