//! Data-dependence analysis with respect to the distributed loop.
//!
//! The load balancer needs to know whether the distributed loop carries
//! dependences (§2.1): carried dependences mean iteration-to-iteration
//! communication, which (a) forces pipelined execution and (b) restricts
//! work movement to logically adjacent slaves so the block distribution —
//! and hence the number of processor-boundary dependences — is preserved
//! (§3.2, Fig. 1b).
//!
//! Subscripts are affine, so a classic distance test decides everything we
//! need: for two references to the same array, the dependence distance in
//! the distributed index is the constant difference of their subscripts in
//! any dimension where both use the distributed variable with the same
//! coefficient.

use crate::affine::Affine;
use crate::ir::{ArrayRef, Node, Program, Stmt};

/// Classification of a dependence relative to the distributed loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Distance {
    /// Same distributed iteration (not carried).
    Zero,
    /// Carried with a constant iteration distance (`+1` = the value flows
    /// from iteration `d` to iteration `d+1`).
    Const(i64),
    /// Both references use the distributed variable but the distance is not
    /// a compile-time constant — treated conservatively as carried.
    Unknown,
    /// One reference uses the distributed variable and the other does not:
    /// the element is shared by *all* distributed iterations (e.g. the pivot
    /// column in LU), requiring broadcast-style communication.
    Global,
}

/// Kind of dependence, by access order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// Write then read (true/flow dependence).
    Flow,
    /// Read then write (anti dependence) — in our loop nests this is a read
    /// of the *previous* outer iteration's value.
    Anti,
    /// Write then write.
    Output,
}

/// One detected dependence.
#[derive(Clone, Debug)]
pub struct Dependence {
    pub array: String,
    pub src_stmt: String,
    pub dst_stmt: String,
    pub kind: DepKind,
    pub distance: Distance,
}

/// Result of analyzing a program.
#[derive(Clone, Debug, Default)]
pub struct DepAnalysis {
    pub deps: Vec<Dependence>,
}

impl DepAnalysis {
    /// True if any dependence is carried by the distributed loop.
    pub fn has_carried(&self) -> bool {
        self.deps.iter().any(|d| {
            matches!(d.distance, Distance::Const(k) if k != 0) || d.distance == Distance::Unknown
        })
    }

    /// True if some value is shared by all distributed iterations.
    pub fn has_global(&self) -> bool {
        self.deps.iter().any(|d| d.distance == Distance::Global)
    }

    /// All constant carried distances, deduplicated and sorted.
    pub fn carried_distances(&self) -> Vec<i64> {
        let mut ds: Vec<i64> = self
            .deps
            .iter()
            .filter_map(|d| match d.distance {
                Distance::Const(k) if k != 0 => Some(k),
                _ => None,
            })
            .collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    }

    /// True if every carried dependence has |distance| ≤ 1 (nearest
    /// neighbour), which is what the pipelined engine supports.
    pub fn nearest_neighbor_only(&self) -> bool {
        !self.deps.iter().any(|d| {
            matches!(d.distance, Distance::Const(k) if k.abs() > 1)
                || d.distance == Distance::Unknown
        })
    }
}

/// Distance between two subscript vectors with respect to `dvar` (public
/// so transformations can build direction vectors over any loop variable).
pub fn distance_wrt(a: &ArrayRef, b: &ArrayRef, dvar: &str) -> Distance {
    ref_distance(a, b, dvar)
}

/// Distance between two subscript vectors with respect to `dvar`.
fn ref_distance(a: &ArrayRef, b: &ArrayRef, dvar: &str) -> Distance {
    debug_assert_eq!(a.subs.len(), b.subs.len());
    let mut result = Distance::Zero;
    for (sa, sb) in a.subs.iter().zip(&b.subs) {
        let ca = sa.coeff(dvar);
        let cb = sb.coeff(dvar);
        match (ca != 0, cb != 0) {
            (false, false) => continue,
            (true, true) => {
                if ca != cb {
                    return Distance::Unknown;
                }
                let diff: Affine = sa.diff(sb);
                if !diff.is_constant() {
                    return Distance::Unknown;
                }
                if diff.constant % ca != 0 {
                    // Subscripts can never touch the same element in this
                    // dimension; no dependence through it, but other dims
                    // may still carry one. Treat as no constraint.
                    continue;
                }
                let d = diff.constant / ca;
                if d != 0 {
                    match result {
                        Distance::Zero => result = Distance::Const(d),
                        Distance::Const(prev) if prev == d => {}
                        _ => return Distance::Unknown,
                    }
                }
            }
            _ => return Distance::Global,
        }
    }
    result
}

fn collect_stmts(nodes: &[Node], out: &mut Vec<Stmt>) {
    for n in nodes {
        match n {
            Node::Stmt(s) => out.push(s.clone()),
            Node::Loop(l) => collect_stmts(&l.body, out),
        }
    }
}

/// Analyze all dependences in `program` with respect to its distributed
/// loop variable. Pairs of read-only references are ignored (no dependence
/// without a write).
pub fn analyze(program: &Program) -> DepAnalysis {
    let dvar = program.distributed_var.as_str();
    let mut stmts = Vec::new();
    collect_stmts(&program.body, &mut stmts);

    let mut deps = Vec::new();
    for s1 in &stmts {
        for w in &s1.writes {
            for s2 in &stmts {
                // write -> read (flow) and read -> write (anti)
                for r in &s2.reads {
                    if r.array != w.array {
                        continue;
                    }
                    let d = ref_distance(w, r, dvar);
                    // A flow dependence flows from the write to the read;
                    // the paper's pipeline direction is the sign of the
                    // distance d where read(j) uses write(j - d).
                    deps.push(Dependence {
                        array: w.array.clone(),
                        src_stmt: s1.label.clone(),
                        dst_stmt: s2.label.clone(),
                        kind: if let Distance::Const(k) = d {
                            if k >= 0 {
                                DepKind::Flow
                            } else {
                                DepKind::Anti
                            }
                        } else {
                            DepKind::Flow
                        },
                        distance: d,
                    });
                }
                for w2 in &s2.writes {
                    if w2.array != w.array || std::ptr::eq(w, w2) {
                        continue;
                    }
                    let d = ref_distance(w, w2, dvar);
                    if d != Distance::Zero {
                        deps.push(Dependence {
                            array: w.array.clone(),
                            src_stmt: s1.label.clone(),
                            dst_stmt: s2.label.clone(),
                            kind: DepKind::Output,
                            distance: d,
                        });
                    }
                }
            }
        }
    }
    // Self-references with distance zero are not interesting; drop them to
    // keep reports readable, but keep everything carried or global.
    deps.retain(|d| d.distance != Distance::Zero || d.src_stmt != d.dst_stmt);
    DepAnalysis { deps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::build::*;
    use crate::programs;

    #[test]
    fn mm_has_no_carried_deps() {
        let p = programs::matmul(64, 1);
        let a = analyze(&p);
        assert!(!a.has_carried(), "deps: {:?}", a.deps);
        assert!(!a.has_global());
        assert!(a.nearest_neighbor_only());
    }

    #[test]
    fn sor_carries_unit_distances() {
        let p = programs::sor(64, 4);
        let a = analyze(&p);
        assert!(a.has_carried());
        let ds = a.carried_distances();
        assert!(ds.contains(&1), "distances: {ds:?}");
        assert!(ds.contains(&-1), "distances: {ds:?}");
        assert!(a.nearest_neighbor_only());
    }

    #[test]
    fn lu_has_global_but_not_carried() {
        let p = programs::lu(64);
        let a = analyze(&p);
        assert!(a.has_global(), "deps: {:?}", a.deps);
        assert!(!a.has_carried(), "deps: {:?}", a.deps);
    }

    #[test]
    fn distance_mismatched_coeff_is_unknown() {
        let w = aref("a", vec![crate::affine::Affine::scaled_var("i", 2)]);
        let r = aref("a", vec![crate::affine::Affine::var("i")]);
        assert_eq!(ref_distance(&w, &r, "i"), Distance::Unknown);
    }

    #[test]
    fn distance_non_divisible_means_disjoint() {
        // a[2i] vs a[2i+1]: never alias; contributes no constraint.
        let w = aref("a", vec![crate::affine::Affine::scaled_var("i", 2)]);
        let r = aref("a", vec![crate::affine::Affine::scaled_var("i", 2) + 1]);
        assert_eq!(ref_distance(&w, &r, "i"), Distance::Zero);
    }

    #[test]
    fn conflicting_distances_are_unknown() {
        // a[i][i] vs a[i-1][i-2]: dim distances 1 and 2 conflict.
        let i = crate::affine::Affine::var("i");
        let w = aref("a", vec![i.clone(), i.clone()]);
        let r = aref("a", vec![i.clone() + (-1), i.clone() + (-2)]);
        assert_eq!(ref_distance(&w, &r, "i"), Distance::Unknown);
    }

    #[test]
    fn global_when_one_side_constant() {
        let i = crate::affine::Affine::var("i");
        let k = crate::affine::Affine::var("k");
        let w = aref("a", vec![i]);
        let r = aref("a", vec![k]);
        assert_eq!(ref_distance(&w, &r, "i"), Distance::Global);
    }

    #[test]
    fn non_constant_difference_is_unknown() {
        // x[i] vs x[i+k] where k is a runtime value: both use the
        // distributed variable, but the distance depends on k.
        let i = crate::affine::Affine::var("i");
        let k = crate::affine::Affine::var("k");
        let w = aref("x", vec![i.clone()]);
        let r = aref("x", vec![i + k]);
        assert_eq!(ref_distance(&w, &r, "i"), Distance::Unknown);
    }

    /// Whole-program path: an indirect-offset stencil must analyze as
    /// Unknown-carried, which disqualifies both the independent engine
    /// (carried) and the pipelined engine (not nearest-neighbour).
    #[test]
    fn unknown_carried_program_classification() {
        let n = crate::affine::Affine::var("n");
        let i = crate::affine::Affine::var("i");
        let off = crate::affine::Affine::var("off");
        let p = crate::ir::Program {
            name: "offset_stencil".into(),
            params: vec![param("n", 64), param("off", 3)],
            arrays: vec![array("x", vec![n.clone()])],
            body: vec![for_loop(
                "t",
                0i64,
                2i64,
                vec![for_loop(
                    "i",
                    0i64,
                    n.clone(),
                    vec![stmt(
                        "x[i] = x[i+off]",
                        vec![aref("x", vec![i.clone()])],
                        vec![aref("x", vec![i.clone() + off.clone()])],
                        1.0,
                    )],
                )],
            )],
            distributed_var: "i".into(),
            distributed_array: "x".into(),
            distributed_dim: 0,
        };
        let a = analyze(&p);
        assert!(a
            .deps
            .iter()
            .any(|d| d.distance == Distance::Unknown && d.array == "x"));
        assert!(a.has_carried(), "Unknown must count as carried");
        assert!(!a.nearest_neighbor_only(), "Unknown cannot be pipelined");
        assert!(a.carried_distances().is_empty(), "no constant distance");
    }

    /// Whole-program path: LU's pivot column `a[k][·]` is read by every
    /// distributed iteration `j` — a Global dependence, with the constant
    /// carried set empty (broadcast, not pipeline).
    #[test]
    fn lu_pivot_column_is_global_flow() {
        let p = programs::lu(64);
        let a = analyze(&p);
        let global: Vec<&Dependence> = a
            .deps
            .iter()
            .filter(|d| d.distance == Distance::Global)
            .collect();
        assert!(!global.is_empty());
        assert!(global.iter().all(|d| d.array == "a"));
        assert!(global.iter().any(|d| d.kind == DepKind::Flow));
        assert!(a.carried_distances().is_empty(), "global is not carried");
        assert!(a.nearest_neighbor_only(), "global does not block pipeline");
    }
}
