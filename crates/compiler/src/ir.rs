//! Loop-nest intermediate representation.
//!
//! The paper's compiler starts from sequential Fortran loop nests plus a
//! data-distribution directive (as in Fortran D / Vienna Fortran) and keeps
//! the loop structure in the generated SPMD code (§4.1). This IR is that
//! starting point: perfectly explicit loop nests with affine bounds and
//! affine array subscripts, a per-statement cost model, and one directive
//! naming the loop whose iterations are distributed (owner-computes).

use crate::affine::Affine;
use std::collections::BTreeMap;

/// A symbolic problem parameter (e.g. the matrix dimension `n`) with the
/// default value used for compile-time cost estimation.
#[derive(Clone, Debug)]
pub struct Param {
    pub name: String,
    pub default: i64,
}

/// A (possibly multi-dimensional) array declaration with affine extents.
#[derive(Clone, Debug)]
pub struct ArrayDecl {
    pub name: String,
    pub dims: Vec<Affine>,
    /// Bytes per element (for communication-volume estimates).
    pub elem_bytes: u64,
}

/// A subscripted reference to an array.
#[derive(Clone, Debug)]
pub struct ArrayRef {
    pub array: String,
    pub subs: Vec<Affine>,
}

impl ArrayRef {
    pub fn new(array: impl Into<String>, subs: Vec<Affine>) -> ArrayRef {
        ArrayRef {
            array: array.into(),
            subs,
        }
    }
}

/// An assignment statement with explicit access lists and a cost model.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// Human-readable label used in emitted pseudo-code.
    pub label: String,
    pub writes: Vec<ArrayRef>,
    pub reads: Vec<ArrayRef>,
    /// Floating-point operations per execution of the statement.
    pub flops: f64,
    /// True if the statement is guarded by a data-dependent condition,
    /// which makes per-iteration cost unpredictable (Table 1, last row).
    pub conditional: bool,
}

/// How a loop's trip count is determined.
#[derive(Clone, Debug, PartialEq)]
pub enum LoopKind {
    /// A counted DO loop with affine bounds.
    For,
    /// A data-dependent WHILE loop (e.g. iterate-until-converged); the
    /// estimate is used only for cost models. §4.1 discusses the master
    /// control code this requires.
    WhileData { est_iters: i64 },
}

/// A loop with half-open affine bounds `[lower, upper)`.
#[derive(Clone, Debug)]
pub struct Loop {
    pub var: String,
    pub lower: Affine,
    pub upper: Affine,
    pub kind: LoopKind,
    pub body: Vec<Node>,
}

/// A node in the loop tree.
#[derive(Clone, Debug)]
pub enum Node {
    Loop(Loop),
    Stmt(Stmt),
}

/// A source location in the loop-nest IR: the program, the stack of
/// enclosing loop variables, and (optionally) a statement label. There are
/// no line numbers — the IR is built programmatically — so the loop path is
/// the location, rendered like `sor: iter>j>i: b[j][i] = ...`. Analysis
/// diagnostics (`dlb-analyze`) anchor on these.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    pub program: String,
    /// Loop variables from outermost to innermost enclosing loop.
    pub loops: Vec<String>,
    /// Statement label, when the span points at a statement rather than a
    /// loop or the whole program.
    pub stmt: Option<String>,
}

impl Span {
    /// Span covering a whole program.
    pub fn program(name: &str) -> Span {
        Span {
            program: name.to_string(),
            loops: Vec::new(),
            stmt: None,
        }
    }

    /// Span for a loop given the path of enclosing loop variables ending in
    /// the loop itself.
    pub fn of_loop(name: &str, loops: &[&str]) -> Span {
        Span {
            program: name.to_string(),
            loops: loops.iter().map(|s| s.to_string()).collect(),
            stmt: None,
        }
    }

    /// Span for a statement under the given loop path.
    pub fn of_stmt(name: &str, loops: &[&str], label: &str) -> Span {
        Span {
            stmt: Some(label.to_string()),
            ..Span::of_loop(name, loops)
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.program)?;
        if !self.loops.is_empty() {
            write!(f, ": {}", self.loops.join(">"))?;
        }
        if let Some(s) = &self.stmt {
            write!(f, ": {s}")?;
        }
        Ok(())
    }
}

/// A sequential program: the unit the parallelizing compiler consumes.
#[derive(Clone, Debug)]
pub struct Program {
    pub name: String,
    pub params: Vec<Param>,
    pub arrays: Vec<ArrayDecl>,
    pub body: Vec<Node>,
    /// Distribution directive: the loop variable whose iterations are
    /// distributed across slaves.
    pub distributed_var: String,
    /// The array distributed with the loop (owner-computes) and which of
    /// its dimensions is indexed by the distributed variable.
    pub distributed_array: String,
    pub distributed_dim: usize,
}

/// Errors reported by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    UnknownArray(String),
    SubscriptArity {
        array: String,
        expected: usize,
        got: usize,
    },
    DuplicateLoopVar(String),
    DistributedLoopMissing(String),
    UnknownVariable {
        expr: String,
        var: String,
    },
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::UnknownArray(a) => write!(f, "reference to undeclared array `{a}`"),
            IrError::SubscriptArity {
                array,
                expected,
                got,
            } => write!(
                f,
                "array `{array}` has {expected} dims but {got} subscripts"
            ),
            IrError::DuplicateLoopVar(v) => write!(f, "loop variable `{v}` shadows an outer loop"),
            IrError::DistributedLoopMissing(v) => {
                write!(
                    f,
                    "distribution directive names `{v}` but no such loop exists"
                )
            }
            IrError::UnknownVariable { expr, var } => {
                write!(f, "expression `{expr}` uses `{var}` which is neither a parameter nor an enclosing loop variable")
            }
        }
    }
}

impl std::error::Error for IrError {}

impl Program {
    /// Check structural well-formedness: declared arrays, matching subscript
    /// arity, unique loop variables, a distributed loop that exists, and
    /// every affine expression closed over parameters + enclosing loop vars.
    pub fn validate(&self) -> Result<(), IrError> {
        let arrays: BTreeMap<&str, usize> = self
            .arrays
            .iter()
            .map(|a| (a.name.as_str(), a.dims.len()))
            .collect();
        let params: Vec<&str> = self.params.iter().map(|p| p.name.as_str()).collect();
        let mut found_distributed = false;
        let mut scope: Vec<String> = Vec::new();
        self.validate_nodes(
            &self.body,
            &arrays,
            &params,
            &mut scope,
            &mut found_distributed,
        )?;
        if !found_distributed {
            return Err(IrError::DistributedLoopMissing(
                self.distributed_var.clone(),
            ));
        }
        if !arrays.contains_key(self.distributed_array.as_str()) {
            return Err(IrError::UnknownArray(self.distributed_array.clone()));
        }
        Ok(())
    }

    fn validate_expr(&self, e: &Affine, params: &[&str], scope: &[String]) -> Result<(), IrError> {
        for v in e.vars() {
            if !params.contains(&v) && !scope.iter().any(|s| s == v) {
                return Err(IrError::UnknownVariable {
                    expr: format!("{e}"),
                    var: v.to_string(),
                });
            }
        }
        Ok(())
    }

    fn validate_nodes(
        &self,
        nodes: &[Node],
        arrays: &BTreeMap<&str, usize>,
        params: &[&str],
        scope: &mut Vec<String>,
        found_distributed: &mut bool,
    ) -> Result<(), IrError> {
        for node in nodes {
            match node {
                Node::Loop(l) => {
                    if scope.contains(&l.var) {
                        return Err(IrError::DuplicateLoopVar(l.var.clone()));
                    }
                    self.validate_expr(&l.lower, params, scope)?;
                    self.validate_expr(&l.upper, params, scope)?;
                    if l.var == self.distributed_var {
                        *found_distributed = true;
                    }
                    scope.push(l.var.clone());
                    self.validate_nodes(&l.body, arrays, params, scope, found_distributed)?;
                    scope.pop();
                }
                Node::Stmt(s) => {
                    for r in s.writes.iter().chain(&s.reads) {
                        match arrays.get(r.array.as_str()) {
                            None => return Err(IrError::UnknownArray(r.array.clone())),
                            Some(&n) if n != r.subs.len() => {
                                return Err(IrError::SubscriptArity {
                                    array: r.array.clone(),
                                    expected: n,
                                    got: r.subs.len(),
                                })
                            }
                            _ => {}
                        }
                        for sub in &r.subs {
                            self.validate_expr(sub, params, scope)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Default parameter bindings for compile-time estimation.
    pub fn default_env(&self) -> BTreeMap<String, i64> {
        self.params
            .iter()
            .map(|p| (p.name.clone(), p.default))
            .collect()
    }

    /// The chain of loops from the outermost level down to (and including)
    /// the distributed loop. Empty if the directive is dangling (callers
    /// should have validated).
    pub fn path_to_distributed(&self) -> Vec<&Loop> {
        let mut path = Vec::new();
        fn walk<'a>(nodes: &'a [Node], target: &str, path: &mut Vec<&'a Loop>) -> bool {
            for node in nodes {
                if let Node::Loop(l) = node {
                    path.push(l);
                    if l.var == target || walk(&l.body, target, path) {
                        return true;
                    }
                    path.pop();
                }
            }
            false
        }
        walk(&self.body, &self.distributed_var, &mut path);
        path
    }

    /// The distributed loop itself.
    pub fn distributed_loop(&self) -> Option<&Loop> {
        self.path_to_distributed().into_iter().last()
    }

    /// Estimated floating-point cost of executing `nodes` once with the
    /// given bindings. Loop variables inside are bound to their midpoint to
    /// get a representative per-iteration cost for triangular nests.
    pub fn estimate_cost(&self, nodes: &[Node], env: &BTreeMap<String, i64>) -> f64 {
        let mut total = 0.0;
        for node in nodes {
            match node {
                Node::Stmt(s) => total += s.flops,
                Node::Loop(l) => {
                    let trips = self.estimate_trips(l, env);
                    let mut inner = env.clone();
                    let lo = l.lower.eval(env).unwrap_or(0);
                    inner.insert(l.var.clone(), lo + trips.max(1) / 2);
                    total += trips as f64 * self.estimate_cost(&l.body, &inner);
                }
            }
        }
        total
    }

    /// Estimated trip count of a loop under `env`.
    pub fn estimate_trips(&self, l: &Loop, env: &BTreeMap<String, i64>) -> i64 {
        match l.kind {
            LoopKind::WhileData { est_iters } => est_iters,
            LoopKind::For => {
                let lo = l.lower.eval(env).unwrap_or(0);
                let hi = l.upper.eval(env).unwrap_or(lo);
                (hi - lo).max(0)
            }
        }
    }

    /// The [`Span`] of the statement with the given label, if present.
    pub fn span_of(&self, label: &str) -> Option<Span> {
        self.statements()
            .into_iter()
            .find(|(_, s)| s.label == label)
            .map(|(loops, s)| Span::of_stmt(&self.name, &loops, &s.label))
    }

    /// All statements in the subtree rooted at `nodes`, with the stack of
    /// enclosing loop variables for each.
    pub fn statements(&self) -> Vec<(Vec<&str>, &Stmt)> {
        let mut out = Vec::new();
        fn walk<'a>(
            nodes: &'a [Node],
            scope: &mut Vec<&'a str>,
            out: &mut Vec<(Vec<&'a str>, &'a Stmt)>,
        ) {
            for node in nodes {
                match node {
                    Node::Stmt(s) => out.push((scope.clone(), s)),
                    Node::Loop(l) => {
                        scope.push(&l.var);
                        walk(&l.body, scope, out);
                        scope.pop();
                    }
                }
            }
        }
        walk(&self.body, &mut Vec::new(), &mut out);
        out
    }
}

/// Fluent helpers for building IR in tests and app definitions.
pub mod build {
    use super::*;

    pub fn param(name: &str, default: i64) -> Param {
        Param {
            name: name.into(),
            default,
        }
    }

    pub fn array(name: &str, dims: Vec<Affine>) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            dims,
            elem_bytes: 8,
        }
    }

    pub fn for_loop(
        var: &str,
        lower: impl Into<Affine>,
        upper: impl Into<Affine>,
        body: Vec<Node>,
    ) -> Node {
        Node::Loop(Loop {
            var: var.into(),
            lower: lower.into(),
            upper: upper.into(),
            kind: LoopKind::For,
            body,
        })
    }

    pub fn while_loop(
        var: &str,
        est_iters: i64,
        upper: impl Into<Affine>,
        body: Vec<Node>,
    ) -> Node {
        Node::Loop(Loop {
            var: var.into(),
            lower: Affine::constant(0),
            upper: upper.into(),
            kind: LoopKind::WhileData { est_iters },
            body,
        })
    }

    pub fn stmt(label: &str, writes: Vec<ArrayRef>, reads: Vec<ArrayRef>, flops: f64) -> Node {
        Node::Stmt(Stmt {
            label: label.into(),
            writes,
            reads,
            flops,
            conditional: false,
        })
    }

    /// A statement guarded by a data-dependent condition (Table 1, last
    /// row): `flops` is the *expected* cost, not a per-iteration guarantee.
    pub fn cond_stmt(label: &str, writes: Vec<ArrayRef>, reads: Vec<ArrayRef>, flops: f64) -> Node {
        match stmt(label, writes, reads, flops) {
            Node::Stmt(s) => Node::Stmt(Stmt {
                conditional: true,
                ..s
            }),
            n => n,
        }
    }

    pub fn aref(array: &str, subs: Vec<Affine>) -> ArrayRef {
        ArrayRef::new(array, subs)
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::affine::Affine;

    /// A tiny 1-D stencil: for t { for i in 1..n-1 { a[i] = a[i-1]+a[i+1] } }
    fn stencil() -> Program {
        let n = Affine::var("n");
        let i = Affine::var("i");
        Program {
            name: "stencil".into(),
            params: vec![param("n", 100), param("steps", 10)],
            arrays: vec![array("a", vec![n.clone()])],
            body: vec![for_loop(
                "t",
                0i64,
                Affine::var("steps"),
                vec![for_loop(
                    "i",
                    1i64,
                    n.clone() + (-1),
                    vec![stmt(
                        "update",
                        vec![aref("a", vec![i.clone()])],
                        vec![
                            aref("a", vec![i.clone() + (-1)]),
                            aref("a", vec![i.clone() + 1]),
                        ],
                        2.0,
                    )],
                )],
            )],
            distributed_var: "i".into(),
            distributed_array: "a".into(),
            distributed_dim: 0,
        }
    }

    #[test]
    fn validates_ok() {
        stencil().validate().unwrap();
    }

    #[test]
    fn detects_unknown_array() {
        let mut p = stencil();
        p.arrays.clear();
        assert!(matches!(p.validate(), Err(IrError::UnknownArray(_))));
    }

    #[test]
    fn detects_bad_arity() {
        let mut p = stencil();
        if let Node::Loop(t) = &mut p.body[0] {
            if let Node::Loop(i) = &mut t.body[0] {
                if let Node::Stmt(s) = &mut i.body[0] {
                    s.writes[0].subs.push(Affine::constant(0));
                }
            }
        }
        assert!(matches!(p.validate(), Err(IrError::SubscriptArity { .. })));
    }

    #[test]
    fn detects_missing_distributed_loop() {
        let mut p = stencil();
        p.distributed_var = "zz".into();
        assert!(matches!(
            p.validate(),
            Err(IrError::DistributedLoopMissing(_))
        ));
    }

    #[test]
    fn detects_unbound_variable() {
        let mut p = stencil();
        if let Node::Loop(t) = &mut p.body[0] {
            if let Node::Loop(i) = &mut t.body[0] {
                i.upper = Affine::var("mystery");
            }
        }
        assert!(matches!(p.validate(), Err(IrError::UnknownVariable { .. })));
    }

    #[test]
    fn detects_shadowing() {
        let p = Program {
            body: vec![for_loop(
                "i",
                0i64,
                10i64,
                vec![for_loop("i", 0i64, 10i64, vec![])],
            )],
            ..stencil()
        };
        assert!(matches!(p.validate(), Err(IrError::DuplicateLoopVar(_))));
    }

    #[test]
    fn path_to_distributed_finds_chain() {
        let p = stencil();
        let path = p.path_to_distributed();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].var, "t");
        assert_eq!(path[1].var, "i");
        assert_eq!(p.distributed_loop().unwrap().var, "i");
    }

    #[test]
    fn cost_estimation() {
        let p = stencil();
        let env = p.default_env();
        // steps=10 outer iters × 98 inner iters × 2 flops
        let cost = p.estimate_cost(&p.body, &env);
        assert_eq!(cost, 10.0 * 98.0 * 2.0);
    }

    #[test]
    fn while_loop_uses_estimate() {
        let mut p = stencil();
        if let Node::Loop(t) = &mut p.body[0] {
            t.kind = LoopKind::WhileData { est_iters: 5 };
        }
        let cost = p.estimate_cost(&p.body, &p.default_env());
        assert_eq!(cost, 5.0 * 98.0 * 2.0);
    }

    #[test]
    fn statements_with_scope() {
        let p = stencil();
        let stmts = p.statements();
        assert_eq!(stmts.len(), 1);
        assert_eq!(stmts[0].0, vec!["t", "i"]);
        assert_eq!(stmts[0].1.label, "update");
    }
}
