//! Load-balancing hook placement (§4.2, Fig. 3).
//!
//! A *hook* is a conditional call to the load-balancing code. Hooks must be
//! frequent enough for the balancer to be responsive but cheap enough to be
//! negligible. The paper's rule: if the distributed loop is outermost, hook
//! at the end of each of its iterations; otherwise place the hook at the
//! deepest loop nesting level for which the hook's check cost is a
//! negligible fraction (< 1 %) of the compute executed between consecutive
//! hook executions.
//!
//! We enumerate every candidate site — the end of one iteration of each
//! loop in the slave's nest — estimate the compute between hook executions
//! (with the distributed extent divided by a nominal slave count, since
//! each slave only runs its own share), and report each site's overhead
//! ratio, mirroring the paper's Fig. 3 annotations.

use crate::ir::{Loop, Node, Program};
use std::collections::BTreeMap;
use std::fmt;

/// Default hook check cost, in flop-equivalents: a counter increment, a
/// compare, and a predicted-not-taken branch.
pub const DEFAULT_HOOK_CHECK_FLOPS: f64 = 10.0;

/// Default overhead budget for a hook site (the paper's "negligible
/// fraction, e.g. less than 1%").
pub const DEFAULT_MAX_OVERHEAD: f64 = 0.01;

/// Nominal slave count used to scale the distributed extent when estimating
/// per-slave compute at compile time.
pub const NOMINAL_SLAVES: i64 = 8;

/// One candidate hook site: the end of an iteration of `loop_var`.
#[derive(Clone, Debug)]
pub struct HookSite {
    /// Loop whose iteration end hosts the hook.
    pub loop_var: String,
    /// Depth in the loop nest (0 = outermost loop of the program).
    pub depth: usize,
    /// Whether the site is at or inside the distributed loop (true) or in an
    /// enclosing loop (false).
    pub inside_distributed: bool,
    /// Estimated flops executed between consecutive executions of this hook
    /// on one slave.
    pub period_flops: f64,
    /// `hook_check_flops / period_flops`.
    pub overhead: f64,
}

impl HookSite {
    /// Does the site meet the overhead budget?
    pub fn acceptable(&self, max_overhead: f64) -> bool {
        self.overhead < max_overhead
    }
}

/// The result of hook-placement analysis.
#[derive(Clone, Debug)]
pub struct HookPlacement {
    /// All candidate sites, outermost first.
    pub sites: Vec<HookSite>,
    /// Index into `sites` of the chosen (deepest acceptable) site.
    pub chosen: usize,
}

impl HookPlacement {
    pub fn chosen_site(&self) -> &HookSite {
        &self.sites[self.chosen]
    }
}

impl fmt::Display for HookPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (idx, s) in self.sites.iter().enumerate() {
            let marker = if idx == self.chosen {
                " <== chosen"
            } else {
                ""
            };
            writeln!(
                f,
                "lbhook after `{}` iteration (depth {}): period ~{:.0} flops, overhead {:.3}% {}{}",
                s.loop_var,
                s.depth,
                s.period_flops,
                s.overhead * 100.0,
                if s.acceptable(DEFAULT_MAX_OVERHEAD) {
                    "ok"
                } else if s.overhead >= DEFAULT_MAX_OVERHEAD {
                    "overhead too high"
                } else {
                    ""
                },
                marker
            )?;
        }
        Ok(())
    }
}

/// Analyze hook placement for `program` with default parameters.
pub fn place_hooks(program: &Program) -> HookPlacement {
    place_hooks_with(
        program,
        DEFAULT_HOOK_CHECK_FLOPS,
        DEFAULT_MAX_OVERHEAD,
        NOMINAL_SLAVES,
    )
}

/// Analyze hook placement with explicit hook cost, overhead budget, and
/// nominal slave count.
pub fn place_hooks_with(
    program: &Program,
    hook_check_flops: f64,
    max_overhead: f64,
    nominal_slaves: i64,
) -> HookPlacement {
    let mut env = program.default_env();
    let mut sites = Vec::new();
    // Walk the chain containing the distributed loop, then keep descending
    // through the loops *inside* it (first loop child at each level), since
    // those are also candidate sites (Fig. 3's lbhook2 sits inside the
    // distributed loop).
    let path = program.path_to_distributed();
    assert!(!path.is_empty(), "no distributed loop");
    let dvar = &program.distributed_var;

    // Extend the chain below the distributed loop: follow loop children.
    let mut chain: Vec<&Loop> = path.clone();
    let mut cursor: &Loop = path[path.len() - 1];
    loop {
        let next = cursor.body.iter().find_map(|n| match n {
            Node::Loop(l) => Some(l),
            Node::Stmt(_) => None,
        });
        match next {
            Some(l) => {
                chain.push(l);
                cursor = l;
            }
            None => break,
        }
    }

    let mut inside = false;
    for (depth, l) in chain.iter().enumerate() {
        if l.var == *dvar {
            inside = true;
        }
        // Period = the compute of ONE iteration of this loop on one slave.
        // Bind enclosing loop vars to midpoints for the estimate.
        let one_iter = per_slave_iteration_cost(program, l, &env, dvar, nominal_slaves, inside);
        let trips = program.estimate_trips(l, &env);
        let lo = l.lower.eval(&env).unwrap_or(0);
        env.insert(l.var.clone(), lo + trips.max(1) / 2);
        let overhead = if one_iter > 0.0 {
            hook_check_flops / one_iter
        } else {
            f64::INFINITY
        };
        sites.push(HookSite {
            loop_var: l.var.clone(),
            depth,
            inside_distributed: inside,
            period_flops: one_iter,
            overhead,
        });
    }

    // Deepest acceptable site; fall back to the distributed loop itself
    // (the paper's outermost-loop rule) if nothing passes.
    let chosen = sites
        .iter()
        .rposition(|s| s.acceptable(max_overhead))
        .unwrap_or_else(|| {
            sites
                .iter()
                .position(|s| s.loop_var == *dvar)
                .expect("distributed loop in chain")
        });
    HookPlacement { sites, chosen }
}

/// Analyze hook placement for a *pipelined* program (one with loop-carried
/// dependences) with default parameters.
///
/// The pipelined code generator interchanges the nest: the dependence-
/// carrying inner loop (SOR's row loop `i`) becomes the outer slave loop and
/// the distributed loop iterates over *local* columns inside it — exactly
/// the paper's Fig. 3 shape, where `lbhook2` is per element, `lbhook1` per
/// row, and `lbhook0` per sweep. Hook placement must therefore analyze the
/// interchanged chain.
pub fn place_hooks_pipelined(program: &Program) -> HookPlacement {
    place_hooks_pipelined_with(
        program,
        DEFAULT_HOOK_CHECK_FLOPS,
        DEFAULT_MAX_OVERHEAD,
        NOMINAL_SLAVES,
    )
}

/// [`place_hooks_pipelined`] with explicit parameters.
pub fn place_hooks_pipelined_with(
    program: &Program,
    hook_check_flops: f64,
    max_overhead: f64,
    nominal_slaves: i64,
) -> HookPlacement {
    let path = program.path_to_distributed();
    assert!(!path.is_empty(), "no distributed loop");
    let dloop = path[path.len() - 1];
    let inner = dloop
        .body
        .iter()
        .find_map(|n| match n {
            Node::Loop(l) => Some(l),
            Node::Stmt(_) => None,
        })
        .expect("pipelined program needs an inner loop to pipeline along");

    let mut env = program.default_env();
    // Interchanged chain: enclosing loops, then the inner (pipeline) loop,
    // then the distributed loop over local iterations.
    let mut trips: Vec<(String, i64)> = Vec::new();
    for l in &path[..path.len() - 1] {
        let t = program.estimate_trips(l, &env);
        let lo = l.lower.eval(&env).unwrap_or(0);
        env.insert(l.var.clone(), lo + t.max(1) / 2);
        trips.push((l.var.clone(), t.max(1)));
    }
    let d_trips = program.estimate_trips(dloop, &env).max(1);
    let local_trips = (d_trips / nominal_slaves).max(1);
    {
        let lo = dloop.lower.eval(&env).unwrap_or(0);
        env.insert(dloop.var.clone(), lo + d_trips / 2);
    }
    let inner_trips = program.estimate_trips(inner, &env).max(1);
    {
        let lo = inner.lower.eval(&env).unwrap_or(0);
        env.insert(inner.var.clone(), lo + inner_trips / 2);
    }
    trips.push((inner.var.clone(), inner_trips));
    trips.push((dloop.var.clone(), local_trips));
    let leaf_flops = program.estimate_cost(&inner.body, &env);

    // Period at level d = product of trips below × leaf.
    let mut sites = Vec::new();
    for (depth, (var, _)) in trips.iter().enumerate() {
        let below: i64 = trips[depth + 1..].iter().map(|(_, t)| t).product();
        let period = below as f64 * leaf_flops;
        let overhead = if period > 0.0 {
            hook_check_flops / period
        } else {
            f64::INFINITY
        };
        sites.push(HookSite {
            loop_var: var.clone(),
            depth,
            inside_distributed: depth + 1 >= trips.len(),
            period_flops: period,
            overhead,
        });
    }
    let chosen = sites
        .iter()
        .rposition(|s| s.acceptable(max_overhead))
        .unwrap_or(0);
    HookPlacement { sites, chosen }
}

/// Cost of one iteration of `l` as executed by one slave: distributed-loop
/// trip counts are divided by the nominal slave count when the loop is the
/// distributed one (each slave only executes its share); loops *inside* the
/// distributed loop run at full extent per local iteration.
fn per_slave_iteration_cost(
    program: &Program,
    l: &Loop,
    env: &BTreeMap<String, i64>,
    dvar: &str,
    nominal_slaves: i64,
    _inside: bool,
) -> f64 {
    let mut inner_env = env.clone();
    let trips = program.estimate_trips(l, env);
    let lo = l.lower.eval(env).unwrap_or(0);
    inner_env.insert(l.var.clone(), lo + trips.max(1) / 2);
    let mut cost = 0.0;
    for node in &l.body {
        match node {
            Node::Stmt(s) => cost += s.flops,
            Node::Loop(child) => {
                let child_cost = per_slave_iteration_cost(
                    program,
                    child,
                    &inner_env,
                    dvar,
                    nominal_slaves,
                    _inside,
                );
                let mut child_trips = program.estimate_trips(child, &inner_env);
                if child.var == dvar {
                    child_trips = (child_trips / nominal_slaves).max(1);
                }
                cost += child_trips as f64 * child_cost;
            }
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn matmul_hooks_per_distributed_iteration() {
        // MM: per-row cost 2n^2 is huge; per-j cost 2n = 1000 flops is
        // exactly 1% with a 10-flop check — not strictly below, so the
        // chosen site is the distributed loop `i` itself.
        let p = programs::matmul(500, 1);
        let hp = place_hooks(&p);
        assert_eq!(hp.chosen_site().loop_var, "i");
        assert!(hp.chosen_site().acceptable(DEFAULT_MAX_OVERHEAD));
        // The innermost site must be rejected.
        let innermost = hp.sites.last().unwrap();
        assert_eq!(innermost.loop_var, "k");
        assert!(!innermost.acceptable(DEFAULT_MAX_OVERHEAD));
    }

    #[test]
    fn sor_hooks_per_row_not_per_element() {
        // SOR on the interchanged nest (Fig. 3b): lbhook2 per element
        // (6 flops) is too expensive; lbhook1 per row across ~n/8 local
        // columns (1500 flops, 0.67% with a 10-flop check) is the deepest
        // acceptable site; lbhook0 per sweep is acceptable but shallower.
        let p = programs::sor(2000, 15);
        let hp = place_hooks_pipelined(&p);
        let chosen = hp.chosen_site();
        assert_eq!(chosen.loop_var, "i", "placement:\n{hp}");
        // Interchanged chain is iter -> i -> j.
        let vars: Vec<&str> = hp.sites.iter().map(|s| s.loop_var.as_str()).collect();
        assert_eq!(vars, vec!["iter", "i", "j"]);
        // Per-element site (after one local-column iteration) rejected:
        assert!(!hp.sites[2].acceptable(DEFAULT_MAX_OVERHEAD), "{hp}");
        // Per-sweep site acceptable but NOT chosen because per-row passes.
        assert!(hp.sites[0].acceptable(DEFAULT_MAX_OVERHEAD));
        assert_eq!(chosen.depth, 1);
    }

    #[test]
    fn sor_source_order_hooks_fall_back_to_per_column() {
        // Without the interchange the deepest acceptable site is the
        // distributed loop itself (one column ~12k flops).
        let p = programs::sor(2000, 15);
        let hp = place_hooks(&p);
        assert_eq!(hp.chosen_site().loop_var, "j", "placement:\n{hp}");
    }

    #[test]
    fn lu_hooks_depend_on_problem_size() {
        // n=500: one column update is ~2(n-k) ≈ 500-1000 flops, so a
        // per-column hook busts the 1% budget and the hook lands at the end
        // of each outer step k — the invocation boundary, which is also
        // LU's natural synchronization point (pivot broadcast).
        let small = place_hooks(&programs::lu(500));
        assert_eq!(small.chosen_site().loop_var, "k", "placement:\n{small}");
        // n=4000: a column update is thousands of flops; the hook moves
        // inside the distributed loop (per column).
        let big = place_hooks(&programs::lu(4000));
        assert_eq!(big.chosen_site().loop_var, "j", "placement:\n{big}");
    }

    #[test]
    fn tiny_problem_falls_back_to_distributed_loop() {
        // With a 2x2 matrix nothing passes 1%; fall back to the distributed
        // loop per the paper's outermost rule.
        let p = programs::matmul(2, 1);
        let hp = place_hooks(&p);
        assert_eq!(hp.chosen_site().loop_var, "i");
    }

    #[test]
    fn stricter_budget_moves_hook_outward() {
        let p = programs::sor(2000, 15);
        let lax = place_hooks_with(&p, 10.0, 0.05, 8);
        let strict = place_hooks_with(&p, 10.0, 0.000001, 8);
        assert!(strict.chosen <= lax.chosen);
    }

    #[test]
    fn display_mentions_rejection() {
        let p = programs::sor(2000, 15);
        let text = format!("{}", place_hooks(&p));
        assert!(text.contains("overhead too high"), "{text}");
        assert!(text.contains("<== chosen"), "{text}");
    }
}
