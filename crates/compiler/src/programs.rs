//! The paper's example routines as IR programs (Table 1).
//!
//! These are the sequential loop nests a user would hand to the compiler,
//! together with the distribution directive. `dlb-apps` pairs the paper's
//! three (MM, SOR, LU) with real-data kernels; [`jacobi`] and
//! [`quadrature`] round out Table 1's other rows (nearest-neighbour
//! stencil, data-dependent iteration cost) for analysis coverage.
//! [`all_builtin`] enumerates every program here — `dlb-lint` runs the
//! whole set through the analyzer.

use crate::affine::Affine;
use crate::ir::build::*;
use crate::ir::{Node, Program};

/// Matrix multiplication `C = A × B` (n×n), distributed over the rows of C
/// (loop `i`), wrapped in an application-level repetition loop: the paper's
/// Table 1 classifies MM as repeatedly executed, and its Figure 9 runs MM
/// long enough to observe several load oscillations.
pub fn matmul(n: i64, reps: i64) -> Program {
    let nn = Affine::var("n");
    let i = Affine::var("i");
    let j = Affine::var("j");
    let k = Affine::var("k");
    let body: Vec<Node> = vec![for_loop(
        "rep",
        0i64,
        Affine::var("reps"),
        vec![for_loop(
            "i",
            0i64,
            nn.clone(),
            vec![for_loop(
                "j",
                0i64,
                nn.clone(),
                vec![for_loop(
                    "k",
                    0i64,
                    nn.clone(),
                    vec![stmt(
                        "c[i][j] += a[i][k] * b[k][j]",
                        vec![aref("c", vec![i.clone(), j.clone()])],
                        vec![
                            aref("c", vec![i.clone(), j.clone()]),
                            aref("a", vec![i.clone(), k.clone()]),
                            aref("b", vec![k.clone(), j.clone()]),
                        ],
                        2.0,
                    )],
                )],
            )],
        )],
    )];
    Program {
        name: "matmul".into(),
        params: vec![param("n", n), param("reps", reps)],
        arrays: vec![
            array("a", vec![nn.clone(), nn.clone()]),
            array("b", vec![nn.clone(), nn.clone()]),
            array("c", vec![nn.clone(), nn.clone()]),
        ],
        body,
        distributed_var: "i".into(),
        distributed_array: "c".into(),
        distributed_dim: 0,
    }
}

/// Successive overrelaxation on an n×n grid, `maxiter` sweeps, distributed
/// by columns (loop `j`), Gauss-Seidel ordering so the sweep pipelines along
/// the rows — the paper's Figure 3. Arrays are indexed `b[column][row]`.
pub fn sor(n: i64, maxiter: i64) -> Program {
    let nn = Affine::var("n");
    let i = Affine::var("i");
    let j = Affine::var("j");
    let body: Vec<Node> = vec![for_loop(
        "iter",
        0i64,
        Affine::var("maxiter"),
        vec![for_loop(
            "j",
            1i64,
            nn.clone() + (-1),
            vec![for_loop(
                "i",
                1i64,
                nn.clone() + (-1),
                vec![stmt(
                    "b[j][i] = 0.493*(b[j][i-1] + b[j-1][i] + b[j][i+1] + b[j+1][i]) - 0.972*b[j][i]",
                    vec![aref("b", vec![j.clone(), i.clone()])],
                    vec![
                        aref("b", vec![j.clone(), i.clone() + (-1)]),
                        aref("b", vec![j.clone() + (-1), i.clone()]),
                        aref("b", vec![j.clone(), i.clone() + 1]),
                        aref("b", vec![j.clone() + 1, i.clone()]),
                        aref("b", vec![j.clone(), i.clone()]),
                    ],
                    6.0,
                )],
            )],
        )],
    )];
    Program {
        name: "sor".into(),
        params: vec![param("n", n), param("maxiter", maxiter)],
        arrays: vec![array("b", vec![nn.clone(), nn.clone()])],
        body,
        distributed_var: "j".into(),
        distributed_array: "b".into(),
        distributed_dim: 0,
    }
}

/// LU decomposition (no pivoting) of an n×n matrix stored by columns
/// (`a[column][row]`), distributed over columns (loop `j`). The active part
/// of the distributed loop shrinks with the outer `k` loop (§4.7), and the
/// pivot column `a[k][·]` is read by every distributed iteration (a global
/// dependence — broadcast communication outside the distributed loop).
pub fn lu(n: i64) -> Program {
    let nn = Affine::var("n");
    let i = Affine::var("i");
    let j = Affine::var("j");
    let k = Affine::var("k");
    let body: Vec<Node> = vec![for_loop(
        "k",
        0i64,
        nn.clone() + (-1),
        vec![for_loop(
            "j",
            k.clone() + 1,
            nn.clone(),
            vec![
                stmt(
                    "a[j][k] = a[j][k] / a[k][k]",
                    vec![aref("a", vec![j.clone(), k.clone()])],
                    vec![
                        aref("a", vec![j.clone(), k.clone()]),
                        aref("a", vec![k.clone(), k.clone()]),
                    ],
                    1.0,
                ),
                for_loop(
                    "i",
                    k.clone() + 1,
                    nn.clone(),
                    vec![stmt(
                        "a[j][i] -= a[j][k] * a[k][i]",
                        vec![aref("a", vec![j.clone(), i.clone()])],
                        vec![
                            aref("a", vec![j.clone(), i.clone()]),
                            aref("a", vec![j.clone(), k.clone()]),
                            aref("a", vec![k.clone(), i.clone()]),
                        ],
                        2.0,
                    )],
                ),
            ],
        )],
    )];
    Program {
        name: "lu".into(),
        params: vec![param("n", n)],
        arrays: vec![array("a", vec![nn.clone(), nn.clone()])],
        body,
        distributed_var: "j".into(),
        distributed_array: "a".into(),
        distributed_dim: 0,
    }
}

/// Jacobi relaxation on an n×n grid with an in-loop copy-back, `steps`
/// sweeps, distributed by columns (loop `j`). Reading both neighbouring
/// columns of `a` while writing `a[j]` carries ±1 dependences, so the
/// compiler classifies it Pipelined/AdjacentOnly like SOR — but through the
/// update/copy-back statement pair rather than Gauss-Seidel ordering.
pub fn jacobi(n: i64, steps: i64) -> Program {
    let nn = Affine::var("n");
    let i = Affine::var("i");
    let j = Affine::var("j");
    let body: Vec<Node> = vec![for_loop(
        "t",
        0i64,
        Affine::var("steps"),
        vec![for_loop(
            "j",
            1i64,
            nn.clone() + (-1),
            vec![for_loop(
                "i",
                1i64,
                nn.clone() + (-1),
                vec![
                    stmt(
                        "b[j][i] = 0.25*(a[j][i-1] + a[j][i+1] + a[j-1][i] + a[j+1][i])",
                        vec![aref("b", vec![j.clone(), i.clone()])],
                        vec![
                            aref("a", vec![j.clone(), i.clone() + (-1)]),
                            aref("a", vec![j.clone(), i.clone() + 1]),
                            aref("a", vec![j.clone() + (-1), i.clone()]),
                            aref("a", vec![j.clone() + 1, i.clone()]),
                        ],
                        4.0,
                    ),
                    stmt(
                        "a[j][i] = b[j][i]",
                        vec![aref("a", vec![j.clone(), i.clone()])],
                        vec![aref("b", vec![j.clone(), i.clone()])],
                        1.0,
                    ),
                ],
            )],
        )],
    )];
    Program {
        name: "jacobi".into(),
        params: vec![param("n", n), param("steps", steps)],
        arrays: vec![
            array("a", vec![nn.clone(), nn.clone()]),
            array("b", vec![nn.clone(), nn.clone()]),
        ],
        body,
        distributed_var: "j".into(),
        distributed_array: "a".into(),
        distributed_dim: 0,
    }
}

/// Numerical quadrature over n panels, repeated `reps` times: each panel's
/// refinement depth depends on the integrand, so the per-iteration cost is
/// data-dependent (Table 1, last row) — statically Independent/Direct, but
/// the cost model must treat `flops` as an expectation, not a bound.
pub fn quadrature(n: i64, reps: i64) -> Program {
    let nn = Affine::var("n");
    let i = Affine::var("i");
    let body: Vec<Node> = vec![for_loop(
        "rep",
        0i64,
        Affine::var("reps"),
        vec![for_loop(
            "i",
            0i64,
            nn.clone(),
            vec![cond_stmt(
                "s[i] = adaptive_panel(x[i], x[i+1])",
                vec![aref("s", vec![i.clone()])],
                vec![aref("x", vec![i.clone()]), aref("x", vec![i.clone() + 1])],
                80.0,
            )],
        )],
    )];
    Program {
        name: "quadrature".into(),
        params: vec![param("n", n), param("reps", reps)],
        arrays: vec![
            array("x", vec![nn.clone() + 1]),
            array("s", vec![nn.clone()]),
        ],
        body,
        distributed_var: "i".into(),
        distributed_array: "s".into(),
        distributed_dim: 0,
    }
}

/// Every built-in program, at analysis-friendly default sizes. This is the
/// corpus `dlb-lint` checks; add new example programs here so they are
/// linted from day one.
pub fn all_builtin() -> Vec<Program> {
    vec![
        matmul(500, 2),
        sor(2000, 15),
        jacobi(1000, 10),
        lu(500),
        quadrature(4096, 4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_validate() {
        for p in all_builtin() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn matmul_cost_matches_2n3() {
        let p = matmul(500, 1);
        let cost = p.estimate_cost(&p.body, &p.default_env());
        assert_eq!(cost, 2.0 * 500f64.powi(3));
    }

    #[test]
    fn sor_cost_matches_sweeps() {
        let p = sor(2000, 15);
        let cost = p.estimate_cost(&p.body, &p.default_env());
        assert_eq!(cost, 15.0 * 1998.0 * 1998.0 * 6.0);
    }

    #[test]
    fn lu_distributed_loop_shrinks() {
        let p = lu(100);
        let l = p.distributed_loop().unwrap();
        assert!(l.lower.uses("k"));
        let mut env = p.default_env();
        env.insert("k".into(), 10);
        assert_eq!(p.estimate_trips(l, &env), 89);
        env.insert("k".into(), 98);
        assert_eq!(p.estimate_trips(l, &env), 1);
    }

    #[test]
    fn distributed_paths() {
        assert_eq!(
            matmul(8, 1)
                .path_to_distributed()
                .iter()
                .map(|l| l.var.as_str())
                .collect::<Vec<_>>(),
            vec!["rep", "i"]
        );
        assert_eq!(
            sor(8, 2)
                .path_to_distributed()
                .iter()
                .map(|l| l.var.as_str())
                .collect::<Vec<_>>(),
            vec!["iter", "j"]
        );
        assert_eq!(
            lu(8)
                .path_to_distributed()
                .iter()
                .map(|l| l.var.as_str())
                .collect::<Vec<_>>(),
            vec!["k", "j"]
        );
    }
}
