//! The paper's three example routines as IR programs (Table 1).
//!
//! These are the sequential loop nests a user would hand to the compiler,
//! together with the distribution directive. `dlb-apps` pairs each with a
//! real-data kernel; here they drive the compiler analyses.

use crate::affine::Affine;
use crate::ir::build::*;
use crate::ir::{Node, Program};

/// Matrix multiplication `C = A × B` (n×n), distributed over the rows of C
/// (loop `i`), wrapped in an application-level repetition loop: the paper's
/// Table 1 classifies MM as repeatedly executed, and its Figure 9 runs MM
/// long enough to observe several load oscillations.
pub fn matmul(n: i64, reps: i64) -> Program {
    let nn = Affine::var("n");
    let i = Affine::var("i");
    let j = Affine::var("j");
    let k = Affine::var("k");
    let body: Vec<Node> = vec![for_loop(
        "rep",
        0i64,
        Affine::var("reps"),
        vec![for_loop(
            "i",
            0i64,
            nn.clone(),
            vec![for_loop(
                "j",
                0i64,
                nn.clone(),
                vec![for_loop(
                    "k",
                    0i64,
                    nn.clone(),
                    vec![stmt(
                        "c[i][j] += a[i][k] * b[k][j]",
                        vec![aref("c", vec![i.clone(), j.clone()])],
                        vec![
                            aref("c", vec![i.clone(), j.clone()]),
                            aref("a", vec![i.clone(), k.clone()]),
                            aref("b", vec![k.clone(), j.clone()]),
                        ],
                        2.0,
                    )],
                )],
            )],
        )],
    )];
    Program {
        name: "matmul".into(),
        params: vec![param("n", n), param("reps", reps)],
        arrays: vec![
            array("a", vec![nn.clone(), nn.clone()]),
            array("b", vec![nn.clone(), nn.clone()]),
            array("c", vec![nn.clone(), nn.clone()]),
        ],
        body,
        distributed_var: "i".into(),
        distributed_array: "c".into(),
        distributed_dim: 0,
    }
}

/// Successive overrelaxation on an n×n grid, `maxiter` sweeps, distributed
/// by columns (loop `j`), Gauss-Seidel ordering so the sweep pipelines along
/// the rows — the paper's Figure 3. Arrays are indexed `b[column][row]`.
pub fn sor(n: i64, maxiter: i64) -> Program {
    let nn = Affine::var("n");
    let i = Affine::var("i");
    let j = Affine::var("j");
    let body: Vec<Node> = vec![for_loop(
        "iter",
        0i64,
        Affine::var("maxiter"),
        vec![for_loop(
            "j",
            1i64,
            nn.clone() + (-1),
            vec![for_loop(
                "i",
                1i64,
                nn.clone() + (-1),
                vec![stmt(
                    "b[j][i] = 0.493*(b[j][i-1] + b[j-1][i] + b[j][i+1] + b[j+1][i]) - 0.972*b[j][i]",
                    vec![aref("b", vec![j.clone(), i.clone()])],
                    vec![
                        aref("b", vec![j.clone(), i.clone() + (-1)]),
                        aref("b", vec![j.clone() + (-1), i.clone()]),
                        aref("b", vec![j.clone(), i.clone() + 1]),
                        aref("b", vec![j.clone() + 1, i.clone()]),
                        aref("b", vec![j.clone(), i.clone()]),
                    ],
                    6.0,
                )],
            )],
        )],
    )];
    Program {
        name: "sor".into(),
        params: vec![param("n", n), param("maxiter", maxiter)],
        arrays: vec![array("b", vec![nn.clone(), nn.clone()])],
        body,
        distributed_var: "j".into(),
        distributed_array: "b".into(),
        distributed_dim: 0,
    }
}

/// LU decomposition (no pivoting) of an n×n matrix stored by columns
/// (`a[column][row]`), distributed over columns (loop `j`). The active part
/// of the distributed loop shrinks with the outer `k` loop (§4.7), and the
/// pivot column `a[k][·]` is read by every distributed iteration (a global
/// dependence — broadcast communication outside the distributed loop).
pub fn lu(n: i64) -> Program {
    let nn = Affine::var("n");
    let i = Affine::var("i");
    let j = Affine::var("j");
    let k = Affine::var("k");
    let body: Vec<Node> = vec![for_loop(
        "k",
        0i64,
        nn.clone() + (-1),
        vec![for_loop(
            "j",
            k.clone() + 1,
            nn.clone(),
            vec![
                stmt(
                    "a[j][k] = a[j][k] / a[k][k]",
                    vec![aref("a", vec![j.clone(), k.clone()])],
                    vec![
                        aref("a", vec![j.clone(), k.clone()]),
                        aref("a", vec![k.clone(), k.clone()]),
                    ],
                    1.0,
                ),
                for_loop(
                    "i",
                    k.clone() + 1,
                    nn.clone(),
                    vec![stmt(
                        "a[j][i] -= a[j][k] * a[k][i]",
                        vec![aref("a", vec![j.clone(), i.clone()])],
                        vec![
                            aref("a", vec![j.clone(), i.clone()]),
                            aref("a", vec![j.clone(), k.clone()]),
                            aref("a", vec![k.clone(), i.clone()]),
                        ],
                        2.0,
                    )],
                ),
            ],
        )],
    )];
    Program {
        name: "lu".into(),
        params: vec![param("n", n)],
        arrays: vec![array("a", vec![nn.clone(), nn.clone()])],
        body,
        distributed_var: "j".into(),
        distributed_array: "a".into(),
        distributed_dim: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_validate() {
        matmul(500, 1).validate().unwrap();
        sor(2000, 15).validate().unwrap();
        lu(500).validate().unwrap();
    }

    #[test]
    fn matmul_cost_matches_2n3() {
        let p = matmul(500, 1);
        let cost = p.estimate_cost(&p.body, &p.default_env());
        assert_eq!(cost, 2.0 * 500f64.powi(3));
    }

    #[test]
    fn sor_cost_matches_sweeps() {
        let p = sor(2000, 15);
        let cost = p.estimate_cost(&p.body, &p.default_env());
        assert_eq!(cost, 15.0 * 1998.0 * 1998.0 * 6.0);
    }

    #[test]
    fn lu_distributed_loop_shrinks() {
        let p = lu(100);
        let l = p.distributed_loop().unwrap();
        assert!(l.lower.uses("k"));
        let mut env = p.default_env();
        env.insert("k".into(), 10);
        assert_eq!(p.estimate_trips(l, &env), 89);
        env.insert("k".into(), 98);
        assert_eq!(p.estimate_trips(l, &env), 1);
    }

    #[test]
    fn distributed_paths() {
        assert_eq!(
            matmul(8, 1)
                .path_to_distributed()
                .iter()
                .map(|l| l.var.as_str())
                .collect::<Vec<_>>(),
            vec!["rep", "i"]
        );
        assert_eq!(
            sor(8, 2)
                .path_to_distributed()
                .iter()
                .map(|l| l.var.as_str())
                .collect::<Vec<_>>(),
            vec!["iter", "j"]
        );
        assert_eq!(
            lu(8)
                .path_to_distributed()
                .iter()
                .map(|l| l.var.as_str())
                .collect::<Vec<_>>(),
            vec!["k", "j"]
        );
    }
}
