//! # dlb-compiler — the parallelizing-compiler layer
//!
//! Reproduces the compiler side of Siegell & Steenkiste (HPDC 1994),
//! *Automatic Generation of Parallel Programs with Dynamic Load Balancing*.
//! The paper's Table 2 lists what a parallelizing compiler must contribute
//! for generated code to be load-balanceable; each task maps to a module:
//!
//! | Table 2 task                                   | module |
//! |------------------------------------------------|--------|
//! | Generate control for the central load balancer | [`plan`] (`OuterControl`), [`codegen::emit_master`] |
//! | Determine grain size & block communication     | [`stripmine`] |
//! | Insert slave↔balancer interaction code         | [`hooks`] |
//! | Supply dependence info restricting movement    | [`deps`], [`plan`] (`MovementRule`) |
//! | Generate application-specific work movement    | [`plan`] (`MovedArray` descriptors) |
//! | Generate code for arbitrary communication      | [`plan`] (replicated/aligned classification) |
//!
//! Programs are written in a small loop-nest IR ([`ir`]) with affine bounds
//! and subscripts ([`affine`]); [`programs`] provides the paper's three
//! example routines (MM, SOR, LU). [`plan::compile`] turns a program into a
//! [`plan::ParallelPlan`] that `dlb-core`'s runtime executes, and
//! [`codegen::emit`] prints the transformed SPMD pseudo-code with hook
//! annotations — the paper's Figure 3.

#![forbid(unsafe_code)]

pub mod affine;
pub mod codegen;
pub mod deps;
pub mod hooks;
pub mod ir;
pub mod plan;
pub mod programs;
pub mod props;
pub mod stripmine;
pub mod transform;

pub use affine::Affine;
pub use deps::{analyze, distance_wrt, DepAnalysis, DepKind, Dependence, Distance};
pub use hooks::{
    place_hooks, place_hooks_pipelined, HookPlacement, HookSite, DEFAULT_HOOK_CHECK_FLOPS,
    DEFAULT_MAX_OVERHEAD, NOMINAL_SLAVES,
};
pub use ir::{ArrayDecl, ArrayRef, IrError, Loop, LoopKind, Node, Param, Program, Span, Stmt};
pub use plan::{
    compile, CompileError, GrainPolicy, MovedArray, MovementRule, OuterControl, ParallelPlan,
    Pattern, PipelineSpec,
};
pub use props::AppProperties;
pub use stripmine::{grain_iterations, strip_mine, GRAIN_QUANTUM_FACTOR};
pub use transform::{interchange, InterchangeError};
