//! SPMD pseudo-code emission.
//!
//! The paper's compiler generates C for the master and slave processes. Our
//! runtime executes [`crate::plan::ParallelPlan`]s directly, but we still
//! emit the generated code as annotated pseudo-C so the transformation is
//! inspectable — this reproduces the *shape* of the paper's Figure 3
//! (hook placement and strip-mined SOR) for any input program.

use crate::ir::{Loop, Node, Program};
use crate::plan::{OuterControl, ParallelPlan, Pattern};
use crate::stripmine;
use std::fmt::Write;

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn hook_comment(plan: &ParallelPlan, var: &str) -> Option<String> {
    plan.hooks
        .sites
        .iter()
        .enumerate()
        .find(|(_, s)| s.loop_var == var)
        .map(|(idx, s)| {
            let verdict = if idx == plan.hooks.chosen {
                "chosen".to_string()
            } else if s.overhead >= crate::hooks::DEFAULT_MAX_OVERHEAD {
                "overhead too high".to_string()
            } else {
                "ok, but a deeper site was chosen".to_string()
            };
            format!(
                "lbhook_{var}(); /* {verdict}: {:.3}% overhead */",
                s.overhead * 100.0
            )
        })
}

fn emit_loop(out: &mut String, program: &Program, plan: &ParallelPlan, l: &Loop, depth: usize) {
    indent(out, depth);
    let range = if l.var == program.distributed_var {
        format!("my_first_{v} .. my_last_{v} /* distributed */", v = l.var)
    } else {
        format!("{} .. {}", l.lower, l.upper)
    };
    let _ = writeln!(out, "for ({} = {}) {{", l.var, range);
    for node in &l.body {
        match node {
            Node::Loop(inner) => emit_loop(out, program, plan, inner, depth + 1),
            Node::Stmt(s) => {
                indent(out, depth + 1);
                let _ = writeln!(out, "{};", s.label);
            }
        }
    }
    if let Some(h) = hook_comment(plan, &l.var) {
        indent(out, depth + 1);
        let _ = writeln!(out, "{h}");
    }
    indent(out, depth);
    let _ = writeln!(out, "}}");
}

/// Emit slave pseudo-code for an independent or shrinking program.
fn emit_plain_slave(program: &Program, plan: &ParallelPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "/* slave process, pattern: {:?} */", plan.pattern);
    if plan.pattern == Pattern::Shrinking {
        let _ = writeln!(
            out,
            "/* active slices shrink with the outer loop; inactive slices are"
        );
        let _ = writeln!(
            out,
            "   never moved by the balancer (section 4.7 of the paper) */"
        );
    }
    for a in &plan.replicated_arrays {
        let _ = writeln!(out, "/* array `{a}` is replicated on every slave */");
    }
    for m in &plan.moved_arrays {
        let _ = writeln!(
            out,
            "/* array `{}` moves with work units ({} bytes/unit) via dim {} */",
            m.name, m.bytes_per_unit, m.dim
        );
    }
    for node in &program.body {
        match node {
            Node::Loop(l) => emit_loop(&mut out, program, plan, l, 0),
            Node::Stmt(s) => {
                let _ = writeln!(out, "{};", s.label);
            }
        }
    }
    out
}

/// Emit the paper's Fig. 3c shape: the pipelined slave with strip-mined
/// rows, boundary communication hoisted out of the block, and hooks.
fn emit_pipelined_slave(program: &Program, plan: &ParallelPlan, block: i64) -> String {
    let pipe = plan.pipeline.as_ref().expect("pipelined plan");
    let dvar = &program.distributed_var;
    let ivar = &pipe.inner_var;
    let arr = &program.distributed_array;
    let path = program.path_to_distributed();
    let outer_vars: Vec<&str> = path[..path.len() - 1]
        .iter()
        .map(|l| l.var.as_str())
        .collect();
    let sm = stripmine::strip_mine(program, ivar, block);
    let blocksize = if sm.is_some() {
        format!("{block}")
    } else {
        "blocksize".into()
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* slave process, pattern: Pipelined (paper Fig. 3c) */"
    );
    let _ = writeln!(
        out,
        "/* blocksize = {blocksize} rows per block, chosen so one block takes ~1.5 OS quanta */"
    );
    let mut depth = 0;
    for v in &outer_vars {
        indent(&mut out, depth);
        let _ = writeln!(out, "for ({v}) {{");
        depth += 1;
        if pipe.needs_old_neighbor {
            indent(&mut out, depth);
            let _ = writeln!(
                out,
                "if (pid != 0) send(left, &{arr}[my_first_{dvar}][0], n); /* old values for neighbour */"
            );
            indent(&mut out, depth);
            let _ = writeln!(
                out,
                "if (pid != pcount-1) receive(right, &{arr}[my_last_{dvar}][0], n);"
            );
        }
    }
    indent(&mut out, depth);
    let _ = writeln!(out, "for ({ivar}0 = 0 .. nblocks) {{");
    depth += 1;
    indent(&mut out, depth);
    let _ = writeln!(
        out,
        "if (pid != 0) receive(left, &{arr}[my_first_{dvar}-1][{ivar}0*{blocksize}], {blocksize});"
    );
    indent(&mut out, depth);
    let _ = writeln!(
        out,
        "for ({ivar} = {ivar}0*{blocksize} .. min(({ivar}0+1)*{blocksize}, n-1)) {{ /* strip-mined */"
    );
    depth += 1;
    indent(&mut out, depth);
    let _ = writeln!(
        out,
        "for ({dvar} = my_first_{dvar} .. my_last_{dvar}) {{ /* distributed */"
    );
    depth += 1;
    for (_, s) in program.statements() {
        indent(&mut out, depth);
        let _ = writeln!(out, "{};", s.label);
    }
    if let Some(h) = hook_comment(plan, dvar) {
        indent(&mut out, depth);
        let _ = writeln!(out, "{h}");
    }
    depth -= 1;
    indent(&mut out, depth);
    let _ = writeln!(out, "}}");
    if let Some(h) = hook_comment(plan, ivar) {
        indent(&mut out, depth);
        let _ = writeln!(out, "{h}");
    }
    depth -= 1;
    indent(&mut out, depth);
    let _ = writeln!(out, "}}");
    indent(&mut out, depth);
    let _ = writeln!(
        out,
        "if (pid != pcount-1) send(right, &{arr}[my_last_{dvar}-1][{ivar}0*{blocksize}], {blocksize});"
    );
    depth -= 1;
    indent(&mut out, depth);
    let _ = writeln!(out, "}}");
    for v in outer_vars.iter().rev() {
        if let Some(h) = hook_comment(plan, v) {
            indent(&mut out, depth);
            let _ = writeln!(out, "{h}");
        }
        depth -= 1;
        indent(&mut out, depth);
        let _ = writeln!(out, "}} /* {v} */");
    }
    out
}

/// Emit master pseudo-code: control that mimics the slave loop structure so
/// master and slaves execute the same number of balancing phases (§4.1).
pub fn emit_master(plan: &ParallelPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "/* master process for `{}` */", plan.program);
    match plan.outer {
        OuterControl::Single => {
            let _ = writeln!(out, "distribute_initial_work(); /* block distribution */");
            let _ = writeln!(out, "while (!all_slaves_done()) {{");
            let _ = writeln!(
                out,
                "    balance_phase(); /* collect rates, send instructions */"
            );
            let _ = writeln!(out, "}}");
        }
        OuterControl::Fixed(n) => {
            let _ = writeln!(out, "distribute_initial_work();");
            let _ = writeln!(out, "for (invocation = 0 .. {n}) {{");
            let _ = writeln!(out, "    while (!invocation_done()) balance_phase();");
            let _ = writeln!(out, "}}");
        }
        OuterControl::DataDependent { est } => {
            let _ = writeln!(out, "distribute_initial_work();");
            let _ = writeln!(
                out,
                "while (reduce_continue_flag()) {{ /* data-dependent, est. {est} iters */"
            );
            let _ = writeln!(out, "    while (!invocation_done()) balance_phase();");
            let _ = writeln!(out, "}}");
        }
    }
    let _ = writeln!(out, "gather_results();");
    out
}

/// Emit the complete annotated SPMD program (master + slave).
pub fn emit(program: &Program, plan: &ParallelPlan) -> String {
    let slave = match plan.pattern {
        Pattern::Pipelined => emit_pipelined_slave(program, plan, 100),
        _ => emit_plain_slave(program, plan),
    };
    format!("{}\n{}", emit_master(plan), slave)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::compile;
    use crate::programs;

    #[test]
    fn matmul_codegen_mentions_distribution_and_hooks() {
        let p = programs::matmul(500, 2);
        let plan = compile(&p).unwrap();
        let text = emit(&p, &plan);
        assert!(text.contains("my_first_i .. my_last_i"), "{text}");
        assert!(text.contains("lbhook_i();"), "{text}");
        assert!(text.contains("chosen"), "{text}");
        assert!(text.contains("array `b` is replicated"), "{text}");
        assert!(text.contains("for (invocation = 0 .. 2)"), "{text}");
    }

    #[test]
    fn sor_codegen_matches_fig3_shape() {
        let p = programs::sor(2000, 15);
        let plan = compile(&p).unwrap();
        let text = emit(&p, &plan);
        // Strip-mined block loop with hoisted boundary communication:
        assert!(text.contains("for (i0 = 0 .. nblocks)"), "{text}");
        assert!(
            text.contains("receive(left, &b[my_first_j-1][i0*100], 100)"),
            "{text}"
        );
        assert!(
            text.contains("send(right, &b[my_last_j-1][i0*100], 100)"),
            "{text}"
        );
        // Sweep-start old-value exchange:
        assert!(text.contains("send(left, &b[my_first_j][0], n)"), "{text}");
        // Hook annotations at both candidate depths:
        assert!(text.contains("lbhook_i(); /* chosen"), "{text}");
        assert!(text.contains("lbhook_j(); /* overhead too high"), "{text}");
    }

    #[test]
    fn lu_codegen_mentions_shrinking() {
        let p = programs::lu(500);
        let plan = compile(&p).unwrap();
        let text = emit(&p, &plan);
        assert!(text.contains("active slices shrink"), "{text}");
        assert!(text.contains("my_first_j .. my_last_j"), "{text}");
    }
}
