//! Strip mining and grain-size control (§4.4).
//!
//! Pipelined applications communicate once per iteration of the pipelined
//! loop. If one iteration is smaller than the OS scheduling quantum, the
//! synchronization between slaves amplifies every load imbalance and makes
//! rate measurements useless. The compiler therefore strip-mines the
//! pipelined loop into blocks, moves the boundary communication outside the
//! block, and the *runtime* picks the block size at startup so one block
//! takes about 1.5 × the scheduling quantum (150 ms on the paper's system).

use crate::ir::{Loop, LoopKind, Node, Program};
use crate::Affine;
use dlb_sim::SimDuration;

/// The paper's grain target: blocks of 1.5 × the scheduling quantum.
pub const GRAIN_QUANTUM_FACTOR: f64 = 1.5;

/// Number of loop iterations per block such that one block of computation
/// takes approximately `factor × quantum`, given the measured (or
/// estimated) time of a single iteration. Never returns 0; clamped to
/// `max_iters` when the whole loop is smaller than one block.
pub fn grain_iterations(
    per_iteration: SimDuration,
    quantum: SimDuration,
    factor: f64,
    max_iters: u64,
) -> u64 {
    assert!(factor > 0.0, "grain factor must be positive");
    let target = quantum.mul_f64(factor).micros();
    let per = per_iteration.micros().max(1);
    target.div_ceil(per).max(1).min(max_iters.max(1))
}

/// Strip-mine the loop named `var` by `block` iterations: `for i in lo..hi`
/// becomes `for i0 in 0..nblocks { for i in lo+B*i0 .. lo+B*(i0+1) }`.
///
/// The transformed IR is used for cost estimation and pseudo-code emission
/// (the paper's Fig. 3c); the inner loop's final block is clamped to the
/// original upper bound at run time, which affine bounds cannot express, so
/// the emitted code carries the clamp and the IR slightly overestimates the
/// last block's cost.
///
/// Returns `None` if no `For` loop named `var` exists.
pub fn strip_mine(program: &Program, var: &str, block: i64) -> Option<Program> {
    assert!(block > 0, "block size must be positive");
    let mut p = program.clone();
    let done = strip_nodes(&mut p.body, var, block, &p.params, &program.default_env());
    if done {
        Some(p)
    } else {
        None
    }
}

fn strip_nodes(
    nodes: &mut [Node],
    var: &str,
    block: i64,
    _params: &[crate::ir::Param],
    env: &std::collections::BTreeMap<String, i64>,
) -> bool {
    for node in nodes.iter_mut() {
        if let Node::Loop(l) = node {
            if l.var == var && l.kind == LoopKind::For {
                let lo = l.lower.clone();
                let hi = l.upper.clone();
                let blocks_var = format!("{var}0");
                // nblocks estimated for the IR; the runtime computes it
                // exactly. We keep it symbolic when possible:
                // nblocks = ceil((hi - lo) / block); estimate with env.
                let span = hi.diff(&lo).eval(env).unwrap_or(block);
                // i64::div_ceil is unstable; span and block are >= 0 here.
                #[allow(clippy::manual_div_ceil)]
                let nblocks = ((span.max(0) + block - 1) / block).max(1);
                let inner = Loop {
                    var: var.to_string(),
                    lower: lo.clone() + Affine::scaled_var(&blocks_var, block),
                    upper: lo + Affine::scaled_var(&blocks_var, block) + block,
                    kind: LoopKind::For,
                    body: std::mem::take(&mut l.body),
                };
                *l = Loop {
                    var: blocks_var,
                    lower: Affine::constant(0),
                    upper: Affine::constant(nblocks),
                    kind: LoopKind::For,
                    body: vec![Node::Loop(inner)],
                };
                return true;
            }
            if strip_nodes(&mut l.body, var, block, _params, env) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn grain_matches_paper_example() {
        // 100 ms quantum, factor 1.5 => 150 ms target. If one pipelined row
        // takes 1.5 ms, the block is 100 iterations.
        let g = grain_iterations(
            SimDuration::from_micros(1_500),
            SimDuration::from_millis(100),
            GRAIN_QUANTUM_FACTOR,
            10_000,
        );
        assert_eq!(g, 100);
    }

    #[test]
    fn grain_rounds_up_and_clamps() {
        let g = grain_iterations(
            SimDuration::from_micros(70_000),
            SimDuration::from_millis(100),
            GRAIN_QUANTUM_FACTOR,
            10_000,
        );
        assert_eq!(g, 3); // ceil(150/70)
        let clamped = grain_iterations(
            SimDuration::from_micros(1),
            SimDuration::from_millis(100),
            GRAIN_QUANTUM_FACTOR,
            50,
        );
        assert_eq!(clamped, 50);
        let coarse = grain_iterations(
            SimDuration::from_secs(10),
            SimDuration::from_millis(100),
            GRAIN_QUANTUM_FACTOR,
            10_000,
        );
        assert_eq!(coarse, 1); // one iteration already exceeds the target
    }

    #[test]
    fn strip_mine_sor_row_loop() {
        let p = programs::sor(2000, 15);
        let sm = strip_mine(&p, "i", 100).expect("loop exists");
        sm.validate().unwrap();
        // The chain should now be iter -> j -> i0 -> i.
        let stmts = sm.statements();
        assert_eq!(stmts[0].0, vec!["iter", "j", "i0", "i"]);
        // Cost estimate is preserved up to last-block overshoot (n-2=1998
        // rows become 20 blocks of 100 = 2000).
        let orig = p.estimate_cost(&p.body, &p.default_env());
        let strip = sm.estimate_cost(&sm.body, &sm.default_env());
        let ratio = strip / orig;
        assert!((1.0..1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn strip_mine_missing_loop_is_none() {
        let p = programs::matmul(16, 1);
        assert!(strip_mine(&p, "zz", 4).is_none());
    }

    #[test]
    fn strip_mine_exact_division_preserves_cost() {
        let p = programs::matmul(512, 1);
        let sm = strip_mine(&p, "k", 64).unwrap();
        sm.validate().unwrap();
        let orig = p.estimate_cost(&p.body, &p.default_env());
        let strip = sm.estimate_cost(&sm.body, &sm.default_env());
        assert_eq!(orig, strip);
    }
}
