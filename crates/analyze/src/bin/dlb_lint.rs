//! `dlb-lint`: run every built-in program through the plan linter, then
//! model-check the restore protocol and the work-migration (transfer
//! window) protocol. Prints each report and exits nonzero if any
//! error-severity diagnostic was produced.

use dlb_analyze::{check_protocol, check_transfer_protocol, lint_builtins};

fn main() {
    let mut failed = false;
    for report in lint_builtins() {
        print!("{}", report.render());
        failed |= report.has_errors();
    }
    for protocol in [check_protocol(), check_transfer_protocol()] {
        print!("{}", protocol.render());
        failed |= protocol.has_errors();
    }
    if failed {
        eprintln!("dlb-lint: errors found");
        std::process::exit(1);
    }
    println!("dlb-lint: all checks passed");
}
