//! `dlb-lint`: run every built-in program through the plan linter, then
//! model-check the restore protocol, the work-migration (transfer window)
//! protocol, the master-failover election, and the mid-run join/rejoin
//! handshake. The election and join checkers are additionally
//! self-tested: deliberately broken variants (split-brain voters, an
//! unfenced zombie incarnation) must yield counterexamples, proving the
//! invariants have teeth. Prints each report and exits nonzero if any
//! error-severity diagnostic was produced (or an expected counterexample
//! was not).
//!
//! Flags scale the models to runtime widths and tune the exploration:
//!
//! ```text
//! dlb-lint [--width N] [--max-states N] [--max-depth N] [--walks N]
//!          [--seed N] [--no-reduce] [--exact] [--deny-truncation]
//! dlb-lint --conform FILE
//! ```
//!
//! `--conform FILE` switches to trace-conformance mode: parse a recorded
//! kernel event trace (see `dlb_sim::trace`) and replay its election
//! traffic through the protocol model, exiting nonzero on any refinement
//! violation (DLB-E110) or trace parse error.

use dlb_analyze::{
    check_conformance, check_election_protocol_with, check_join_protocol_with, check_protocol_with,
    check_transfer_protocol_with, lint_builtins, CheckConfig, Code, Report,
};
use dlb_core::{ElectionModel, JoinModel, RestoreModel, TransferModel};

const USAGE: &str = "\
usage: dlb-lint [options]
       dlb-lint --conform FILE

options:
  --width N          model-check runtime-width instances: N survivors
                     (restore), N receivers (transfer), N deputies
                     (election), N slots (join); default = the small
                     standard fixtures
  --max-states N     exploration state budget (default 2000000)
  --max-depth N      exploration depth bound (default 64)
  --walks N          post-exhaustive random walks, 0 disables (default 256)
  --seed N           seed for the random walks (default 0xd1b)
  --no-reduce        disable symmetry + partial-order reduction
  --exact            exact visited-state set instead of 64-bit fingerprints
  --deny-truncation  treat a truncated exploration (DLB-W102) as failure
  --conform FILE     replay a recorded event trace through the election
                     model; fail on divergence (DLB-E110)
  --help             print this help
";

struct Options {
    width: Option<usize>,
    cfg: CheckConfig,
    deny_truncation: bool,
    conform: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        width: None,
        cfg: CheckConfig::default(),
        deny_truncation: false,
        conform: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--width" => {
                let v = value("--width", &mut args)?;
                let n: usize = v.parse().map_err(|_| format!("bad --width {v:?}"))?;
                if n < 2 {
                    return Err("--width must be at least 2".into());
                }
                opts.width = Some(n);
            }
            "--max-states" => {
                let v = value("--max-states", &mut args)?;
                opts.cfg.max_states = v.parse().map_err(|_| format!("bad --max-states {v:?}"))?;
            }
            "--max-depth" => {
                let v = value("--max-depth", &mut args)?;
                opts.cfg.max_depth = v.parse().map_err(|_| format!("bad --max-depth {v:?}"))?;
            }
            "--walks" => {
                let v = value("--walks", &mut args)?;
                opts.cfg.walks = v.parse().map_err(|_| format!("bad --walks {v:?}"))?;
            }
            "--seed" => {
                let v = value("--seed", &mut args)?;
                opts.cfg.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
            }
            "--no-reduce" => opts.cfg.reduce = false,
            "--exact" => opts.cfg.exact = true,
            "--deny-truncation" => opts.deny_truncation = true,
            "--conform" => opts.conform = Some(value("--conform", &mut args)?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Conformance mode: parse + replay one trace file, report, exit.
fn run_conform(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dlb-lint: cannot read {path}: {e}");
            return 1;
        }
    };
    match check_conformance(&text) {
        Ok((report, conf)) => {
            print!("{}", report.render());
            if report.has_errors() {
                eprintln!("dlb-lint: trace diverges from the protocol model");
                1
            } else {
                println!(
                    "dlb-lint: trace conforms ({} events, {} replayed, {} deputies, \
                     {} stand(s), {} win(s))",
                    conf.events, conf.replayed, conf.deputies, conf.stands, conf.wins
                );
                0
            }
        }
        Err(e) => {
            eprintln!("dlb-lint: bad trace {path}: {e}");
            1
        }
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dlb-lint: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Some(path) = &opts.conform {
        std::process::exit(run_conform(path));
    }

    let (restore, transfer, election, join) = match opts.width {
        Some(n) => (
            RestoreModel::wide(n),
            TransferModel::wide(n),
            ElectionModel::wide(n),
            JoinModel::wide(n),
        ),
        None => (
            RestoreModel::standard(),
            TransferModel::standard(),
            ElectionModel::standard(),
            JoinModel::standard(),
        ),
    };

    let mut failed = false;
    let mut truncated = false;
    let consume = |report: &Report, failed: &mut bool, truncated: &mut bool| {
        print!("{}", report.render());
        *failed |= report.has_errors();
        *truncated |= report.has(Code::W102);
    };
    for report in lint_builtins() {
        consume(&report, &mut failed, &mut truncated);
    }
    for protocol in [
        check_protocol_with(&restore, opts.cfg),
        check_transfer_protocol_with(&transfer, opts.cfg),
        check_election_protocol_with(&election, opts.cfg),
        check_join_protocol_with(&join, opts.cfg),
    ] {
        consume(&protocol, &mut failed, &mut truncated);
    }
    // Negative fixtures: deliberately broken variants must be caught with
    // replayable counterexamples, or the checker has lost its teeth.
    // Always checked at the small standard width where the bug is cheap to
    // reach.
    let broken =
        check_election_protocol_with(&ElectionModel::broken_split_brain(), CheckConfig::default());
    if broken.has(Code::E107) {
        println!(
            "election-protocol (forgetful voters): split-brain counterexample found, as expected"
        );
    } else {
        eprintln!(
            "election-protocol (forgetful voters): expected a DLB-E107 counterexample, got:\n{}",
            broken.render()
        );
        failed = true;
    }
    let broken_join = check_join_protocol_with(
        &JoinModel::broken_double_incarnation(),
        CheckConfig::default(),
    );
    if broken_join.has(Code::E111) {
        println!(
            "join-protocol (no incarnation fence): zombie-credit counterexample found, as expected"
        );
    } else {
        eprintln!(
            "join-protocol (no incarnation fence): expected a DLB-E111 counterexample, got:\n{}",
            broken_join.render()
        );
        failed = true;
    }
    if truncated && opts.deny_truncation {
        eprintln!("dlb-lint: exploration truncated (DLB-W102) and --deny-truncation is set");
        failed = true;
    }
    if failed {
        eprintln!("dlb-lint: errors found");
        std::process::exit(1);
    }
    println!("dlb-lint: all checks passed");
}
