//! `dlb-lint`: run every built-in program through the plan linter, then
//! model-check the restore protocol, the work-migration (transfer window)
//! protocol, and the master-failover election. The election checker is
//! additionally self-tested: a deliberately broken split-brain variant
//! must yield a counterexample, proving the invariant has teeth. Prints
//! each report and exits nonzero if any error-severity diagnostic was
//! produced (or the expected counterexample was not).

use dlb_analyze::{
    check_election_protocol, check_election_protocol_with, check_protocol, check_transfer_protocol,
    lint_builtins, CheckConfig, Code,
};
use dlb_core::ElectionModel;

fn main() {
    let mut failed = false;
    for report in lint_builtins() {
        print!("{}", report.render());
        failed |= report.has_errors();
    }
    for protocol in [
        check_protocol(),
        check_transfer_protocol(),
        check_election_protocol(),
    ] {
        print!("{}", protocol.render());
        failed |= protocol.has_errors();
    }
    // Negative fixture: the split-brain election variant must be caught
    // with a replayable counterexample, or the checker has lost its teeth.
    let broken =
        check_election_protocol_with(&ElectionModel::broken_split_brain(), CheckConfig::default());
    if broken.has(Code::E107) {
        println!(
            "election-protocol (forgetful voters): split-brain counterexample found, as expected"
        );
    } else {
        eprintln!(
            "election-protocol (forgetful voters): expected a DLB-E107 counterexample, got:\n{}",
            broken.render()
        );
        failed = true;
    }
    if failed {
        eprintln!("dlb-lint: errors found");
        std::process::exit(1);
    }
    println!("dlb-lint: all checks passed");
}
