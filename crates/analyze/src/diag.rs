//! Structured diagnostics shared by the plan linter and the protocol model
//! checker.
//!
//! Every finding carries a stable [`Code`] (`DLB-Exxx` / `DLB-Wxxx`), a
//! [`Severity`], a [`Span`] into the loop-nest IR (or a protocol-model
//! pseudo-span), a one-line message, and free-form notes — for the model
//! checker, the replayable counterexample trace. A [`Report`] collects the
//! findings of one analysis target and renders them as text.

use dlb_compiler::Span;

/// Stable diagnostic codes. The catalog is documented in DESIGN.md §9;
/// codes are never reused, only retired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Owner-computes violation: a statement writes an element owned by a
    /// different distributed iteration without a modeled transfer.
    E001,
    /// Carried dependence not modeled by the plan's pattern.
    E002,
    /// Plan allows direct (non-adjacent) work movement while the loop
    /// carries a dependence.
    E003,
    /// Chosen hook site exceeds the overhead budget.
    E004,
    /// Strip-mine bounds drop or duplicate iterations.
    E005,
    /// Pipelined plan with a non-nearest-neighbour carried distance.
    E006,
    /// Plan pattern contradicts the dependence analysis.
    E007,
    /// Protocol: a work unit applied more than once.
    E101,
    /// Protocol: quiescence with work units lost.
    E102,
    /// Protocol: reachable non-quiescent state with no enabled action.
    E103,
    /// Transfer protocol: a migrated work unit duplicated (applied twice,
    /// or held by both endpoints at once).
    E104,
    /// Transfer protocol: quiescence with a migrated work unit lost.
    E105,
    /// Transfer protocol: reachable non-quiescent state with no enabled
    /// action (a wedged migration).
    E106,
    /// Election protocol: two masters promoted in one term (split brain).
    E107,
    /// Election protocol: a winner's electing quorum contained a deputy
    /// with a strictly fresher replica (newest-replica rule broken).
    E108,
    /// Election protocol: reachable non-quiescent state with no enabled
    /// action (a wedged election).
    E109,
    /// Trace conformance: a runtime trace contains an election action that
    /// is not enabled in the protocol model at that point — the
    /// implementation diverged from the checked abstraction (refinement
    /// violation).
    E110,
    /// Join protocol: a zombie incarnation (a slot's pre-eviction life)
    /// was credited as the member after a newer life was admitted
    /// (incarnation fence broken).
    E111,
    /// Join protocol: a checkpoint acknowledgement below the admission ack
    /// floor was credited — a rejoiner is booked as holding snapshot state
    /// it was never shipped (stale-snapshot join).
    E112,
    /// Join protocol: reachable non-quiescent state with no enabled action
    /// (a wedged join/rejoin handshake).
    E113,
    /// No acceptable hook site existed; the placement is best-effort.
    W001,
    /// Data-dependent iteration cost: flops figures are expectations.
    W002,
    /// Global dependence implies broadcast communication each invocation.
    W003,
    /// Retired (superseded by [`Code::W102`]); never reused.
    W101,
    /// Exploration was truncated by its bounds: the verdict certifies only
    /// the explored prefix, not the full state space.
    W102,
}

impl Code {
    /// Severity is a property of the code, not the call site.
    pub fn severity(self) -> Severity {
        match self {
            Code::W001 | Code::W002 | Code::W003 | Code::W101 | Code::W102 => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Short human description of what the code means.
    pub fn title(self) -> &'static str {
        match self {
            Code::E001 => "owner-computes violation",
            Code::E002 => "unmodeled carried dependence",
            Code::E003 => "illegal direct work movement",
            Code::E004 => "hook overhead over budget",
            Code::E005 => "strip-mine bounds mismatch",
            Code::E006 => "non-nearest-neighbour pipeline",
            Code::E007 => "pattern contradicts dependences",
            Code::E101 => "duplicate work-unit application",
            Code::E102 => "lost work unit",
            Code::E103 => "protocol deadlock",
            Code::E104 => "duplicate migrated work unit",
            Code::E105 => "lost migrated work unit",
            Code::E106 => "transfer deadlock",
            Code::E107 => "split-brain election",
            Code::E108 => "stale-replica winner",
            Code::E109 => "election deadlock",
            Code::E110 => "runtime trace diverges from model",
            Code::E111 => "double-incarnation credit",
            Code::E112 => "stale-snapshot join",
            Code::E113 => "join deadlock",
            Code::W001 => "no acceptable hook site",
            Code::W002 => "data-dependent iteration cost",
            Code::W003 => "broadcast communication",
            Code::W101 => "model bounds truncated (retired)",
            Code::W102 => "exploration truncated; verdict is bounded, not exhaustive",
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DLB-{self:?}")
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    pub span: Span,
    pub message: String,
    /// Supporting detail, one line each (dependence lists, counterexample
    /// trace steps, budget numbers).
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    pub fn with_notes(mut self, notes: Vec<String>) -> Diagnostic {
        self.notes = notes;
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})\n  --> {}",
            self.severity,
            self.code,
            self.message,
            self.code.title(),
            self.span
        )?;
        for n in &self.notes {
            write!(f, "\n  note: {n}")?;
        }
        Ok(())
    }
}

/// All findings for one analysis target (a program+plan, or the protocol
/// model), ordered as produced.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub target: String,
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new(target: impl Into<String>) -> Report {
        Report {
            target: target.into(),
            diagnostics: Vec::new(),
        }
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// True if a diagnostic with `code` is present.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Render the report as the text `dlb-lint` prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let errors = self.errors().count();
        let warnings = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "{}: clean", self.target);
        } else {
            let _ = writeln!(
                out,
                "{}: {errors} error(s), {warnings} warning(s)",
                self.target
            );
            for d in &self.diagnostics {
                let _ = writeln!(out, "{d}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_stably() {
        assert_eq!(Code::E001.to_string(), "DLB-E001");
        assert_eq!(Code::W101.to_string(), "DLB-W101");
        assert_eq!(Code::E003.severity(), Severity::Error);
        assert_eq!(Code::W002.severity(), Severity::Warning);
    }

    #[test]
    fn report_tracks_errors_and_renders() {
        let mut r = Report::new("demo");
        assert!(!r.has_errors());
        r.push(Diagnostic::new(
            Code::W002,
            Span::program("demo"),
            "cost is an expectation",
        ));
        assert!(!r.has_errors());
        r.push(
            Diagnostic::new(
                Code::E003,
                Span::of_loop("demo", &["t", "i"]),
                "direct movement with carried dependence",
            )
            .with_notes(vec!["carried distances: [1]".into()]),
        );
        assert!(r.has_errors());
        assert!(r.has(Code::E003));
        assert!(!r.has(Code::E001));
        let text = r.render();
        assert!(text.contains("1 error(s), 1 warning(s)"), "{text}");
        assert!(text.contains("DLB-E003"), "{text}");
        assert!(text.contains("demo: t>i"), "{text}");
        assert!(text.contains("note: carried distances"), "{text}");
    }
}
