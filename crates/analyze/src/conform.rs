//! Trace-conformance checking: replay a recorded runtime trace through the
//! election protocol model.
//!
//! The model checker proves properties of the *abstraction*; this pass
//! closes the remaining gap by checking that the *implementation* stays
//! inside it. A kernel event trace (recorded with
//! `RunConfig::record_trace`, or captured from `DLB_TRACE_EVENTS` stderr —
//! same format, [`dlb_sim::trace`]) carries a tag on every election
//! message. Replaying the tagged events through
//! [`ElectionModel`] asks, event by event: *is the action the runtime took
//! enabled in the model here?* A deputy that stands in a term the model
//! would not assign, a vote the model's rules refuse to grant, a
//! self-promotion without a modeled quorum — each is a refinement
//! violation, reported as [`Code::E110`] with the conforming prefix so the
//! divergence point is replayable.
//!
//! The replay is deliberately strict about what it checks and lenient
//! about what it cannot know: untagged events pass through; messages to
//! actors outside the inferred deputy set are skipped (the runtime
//! broadcasts promotions cluster-wide, the model only to deputies);
//! duplicate deliveries of an already-replayed message are absorbed (the
//! network may duplicate, the model wire is a set). Drops need no
//! handling at all — a dropped message simply never has a `DELIVER` event.
//!
//! Actor ↔ deputy mapping: the driver spawns the master as actor 0 and
//! slave `i` as actor `i + 1`; deputy indices in the tags are slave
//! indices.

use crate::diag::{Code, Diagnostic, Report};
use dlb_compiler::Span;
use dlb_core::session::model::{EStep, EWire, ElectionModel, ElectionState};
use dlb_sim::{parse_trace, TraceEvent, TraceKind, TransitionSystem};
use std::collections::BTreeSet;

/// What one conformance replay established.
#[derive(Clone, Debug)]
pub struct Conformance {
    /// Total events in the trace.
    pub events: usize,
    /// Tagged election events replayed through the model.
    pub replayed: usize,
    /// Distinct `(term, candidate)` stands observed.
    pub stands: usize,
    /// Distinct `(term, winner)` promotions observed.
    pub wins: usize,
    /// Deputy-set size inferred from the candidacy traffic.
    pub deputies: usize,
    /// `None` = the trace conforms.
    pub divergence: Option<Divergence>,
}

impl Conformance {
    pub fn ok(&self) -> bool {
        self.divergence.is_none()
    }
}

/// The first point where the runtime left the model.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the diverging event in the trace.
    pub at: usize,
    /// The diverging event, rendered as its trace line.
    pub event: String,
    pub why: String,
    /// The election events replayed successfully before the divergence —
    /// the conforming prefix that reproduces the model state.
    pub prefix: Vec<String>,
}

/// One parsed election tag (the `Msg::trace_tag` grammar).
enum ETag {
    Candidacy {
        term: u64,
        cand: usize,
    },
    Vote {
        term: u64,
        voter: usize,
        cand: usize,
    },
    Promoted {
        term: u64,
        winner: usize,
    },
}

/// Parse a trace tag. `Ok(None)` = not an election tag (ignored);
/// `Err` = an election keyword with a malformed body.
fn parse_tag(tag: &str) -> Result<Option<(ETag, u64)>, String> {
    let mut it = tag.split_whitespace();
    let Some(kw) = it.next() else {
        return Ok(None);
    };
    if !matches!(kw, "candidacy" | "vote" | "promoted") {
        return Ok(None);
    }
    let mut term = None;
    let mut cand = None;
    let mut voter = None;
    let mut winner = None;
    let mut fresh = 0u64;
    for kv in it {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("malformed tag field {kv:?} in {tag:?}"))?;
        let n: u64 = v
            .parse()
            .map_err(|_| format!("non-numeric tag field {kv:?} in {tag:?}"))?;
        match k {
            "term" => term = Some(n),
            "cand" => cand = Some(n as usize),
            "voter" => voter = Some(n as usize),
            "winner" => winner = Some(n as usize),
            "fresh" => fresh = n,
            _ => return Err(format!("unknown tag field {kv:?} in {tag:?}")),
        }
    }
    let term = term.ok_or_else(|| format!("tag missing term: {tag:?}"))?;
    let need = |o: Option<usize>, f: &str| o.ok_or_else(|| format!("tag missing {f}: {tag:?}"));
    let tag = match kw {
        "candidacy" => ETag::Candidacy {
            term,
            cand: need(cand, "cand")?,
        },
        "vote" => ETag::Vote {
            term,
            voter: need(voter, "voter")?,
            cand: need(cand, "cand")?,
        },
        _ => ETag::Promoted {
            term,
            winner: need(winner, "winner")?,
        },
    };
    Ok(Some((tag, fresh)))
}

/// Normalized identity of a model wire message — `fresh` excluded, so a
/// candidacy matches even if the model's static freshness assignment
/// differs from the (time-varying) runtime value.
type WireKey = (u8, usize, u64, usize);

fn key_of(w: &EWire) -> WireKey {
    match w {
        EWire::Candidacy {
            to,
            term,
            candidate,
            ..
        } => (0, *to, *term, *candidate),
        EWire::Vote { to, term, voter } => (1, *to, *term, *voter),
        EWire::Promoted { to, term, winner } => (2, *to, *term, *winner),
    }
}

struct Replay {
    model: ElectionModel,
    state: ElectionState,
    /// Keys of every model message already delivered — re-sends and
    /// network duplicates of these are absorbed, not divergences.
    delivered: BTreeSet<WireKey>,
    stands_seen: BTreeSet<(u64, usize)>,
    wins_seen: BTreeSet<(u64, usize)>,
    prefix: Vec<String>,
}

impl Replay {
    fn wire_pos(&self, key: WireKey) -> Option<usize> {
        self.state.wire.iter().position(|m| key_of(m) == key)
    }

    /// A runtime send of `key`: fine if the model has it in flight (or
    /// already delivered — a re-send), an error otherwise.
    fn expect_sent(&self, key: WireKey) -> Result<(), String> {
        if self.wire_pos(key).is_some() || self.delivered.contains(&key) {
            Ok(())
        } else {
            Err("message is neither in flight nor delivered in the model".into())
        }
    }

    /// A runtime delivery of `key`: consume the model's in-flight copy, or
    /// absorb it as a duplicate if already delivered.
    fn deliver(&mut self, key: WireKey) -> Result<(), String> {
        match self.wire_pos(key) {
            Some(i) => {
                self.state = self.model.apply(&self.state, &EStep::Deliver(i));
                self.delivered.insert(key);
                Ok(())
            }
            None if self.delivered.contains(&key) => Ok(()), // network duplicate
            None => Err("delivered message was never sent in the model".into()),
        }
    }

    fn step(
        &mut self,
        ev: &TraceEvent,
        tag: &ETag,
        dir_send: bool,
        dst: usize,
    ) -> Result<(), String> {
        let n = self.model.deputies;
        // Actor id → deputy index; master (actor 0) and out-of-set slaves
        // are not deputies.
        let dep_of = |actor: usize| actor.checked_sub(1).filter(|d| *d < n);
        match (dir_send, tag) {
            (true, ETag::Candidacy { term, cand }) => {
                if !self.stands_seen.contains(&(*term, *cand)) {
                    let seen = self.state.deps[*cand].term_seen;
                    if *term <= seen {
                        return Err(format!(
                            "deputy {cand} stood in term {term}, but it already saw term \
                             {seen} — re-standing in a spent term"
                        ));
                    }
                    if !self
                        .model
                        .actions(&self.state)
                        .contains(&EStep::Stand(*cand))
                    {
                        return Err(format!(
                            "deputy {cand} stood in term {term}, but Stand({cand}) is not \
                             enabled in the model"
                        ));
                    }
                    // Standing in a term higher than the tagged traffic
                    // justifies is fine: deputies also learn terms from
                    // untagged channels (master pings, replica messages).
                    // Model that learning, then stand.
                    self.state.deps[*cand].term_seen = term - 1;
                    self.state = self.model.apply(&self.state, &EStep::Stand(*cand));
                    self.stands_seen.insert((*term, *cand));
                }
                match dep_of(dst) {
                    Some(to) => self.expect_sent((0, to, *term, *cand)),
                    None => Ok(()), // candidacy to a non-deputy: out of model scope
                }
            }
            (true, ETag::Vote { term, voter, cand }) => {
                // The teeth: the model must itself have granted this vote
                // (candidacy delivered, term unspent, freshness rule held).
                self.expect_sent((1, *cand, *term, *voter)).map_err(|_| {
                    format!(
                        "deputy {voter} granted term {term} to deputy {cand}, but the \
                         model's voting rules did not produce that vote"
                    )
                })
            }
            (true, ETag::Promoted { term, winner }) => {
                if !self.wins_seen.contains(&(*term, *winner)) {
                    if !self
                        .model
                        .actions(&self.state)
                        .contains(&EStep::Win(*winner))
                        || self.state.deps[*winner].standing != *term
                    {
                        let votes = self.state.deps[*winner].votes.len();
                        return Err(format!(
                            "deputy {winner} promoted itself in term {term}, but the model \
                             has no quorum for it ({votes} vote(s) of {} deputies)",
                            n
                        ));
                    }
                    self.state = self.model.apply(&self.state, &EStep::Win(*winner));
                    self.wins_seen.insert((*term, *winner));
                }
                match dep_of(dst) {
                    Some(to) => self.expect_sent((2, to, *term, *winner)),
                    None => Ok(()), // cluster-wide broadcast beyond the deputy set
                }
            }
            (false, ETag::Candidacy { term, cand }) => match dep_of(dst) {
                Some(to) => self.deliver((0, to, *term, *cand)),
                None => Ok(()),
            },
            (
                false,
                ETag::Vote {
                    term,
                    voter,
                    cand: _,
                },
            ) => match dep_of(dst) {
                Some(to) => self.deliver((1, to, *term, *voter)),
                None => Ok(()),
            },
            (false, ETag::Promoted { term, winner }) => match dep_of(dst) {
                Some(to) => self.deliver((2, to, *term, *winner)),
                None => Ok(()),
            },
        }
        .map(|()| self.prefix.push(ev.render()))
    }
}

/// Infer the election model a trace ran under: deputy-set size from the
/// candidacy fan-out (a candidate messages every other deputy), static
/// freshness from each candidate's first advertisement, and a stand budget
/// covering every stand observed.
fn infer_model(events: &[TraceEvent]) -> Result<ElectionModel, String> {
    let mut max_dep = None::<usize>;
    let mut fresh_of: Vec<(usize, u64)> = Vec::new();
    let mut stands = BTreeSet::new();
    let grow = |d: usize, max_dep: &mut Option<usize>| {
        *max_dep = Some(max_dep.map_or(d, |m: usize| m.max(d)));
    };
    for ev in events {
        let (tag, dst) = match &ev.kind {
            TraceKind::Send {
                dst, tag: Some(t), ..
            }
            | TraceKind::Deliver {
                dst, tag: Some(t), ..
            } => (t, *dst),
            _ => continue,
        };
        match parse_tag(tag)? {
            Some((ETag::Candidacy { term, cand }, fresh)) => {
                grow(cand, &mut max_dep);
                if dst >= 1 {
                    grow(dst - 1, &mut max_dep);
                }
                if !fresh_of.iter().any(|(c, _)| *c == cand) {
                    fresh_of.push((cand, fresh));
                }
                stands.insert((term, cand));
            }
            Some((ETag::Vote { voter, cand, .. }, _)) => {
                grow(voter, &mut max_dep);
                grow(cand, &mut max_dep);
            }
            Some((ETag::Promoted { winner, .. }, _)) => grow(winner, &mut max_dep),
            None => {}
        }
    }
    let deputies = max_dep.map_or(0, |m| m + 1);
    // Unobserved deputies keep freshness 0: they never refuse anyone, so
    // the model under-constrains rather than inventing refusals the
    // runtime's (unknown) replica states might not have made.
    let mut fresh = vec![0; deputies];
    for (c, f) in fresh_of {
        fresh[c] = f;
    }
    Ok(ElectionModel {
        deputies,
        fresh,
        max_stands: stands.len() as u32,
        max_drops: 0,
        max_dups: 0,
        one_vote_per_term: true,
        fresh_guard: true,
    })
}

/// Replay the election events of a parsed trace through the model.
pub fn conform_election(events: &[TraceEvent]) -> Result<Conformance, String> {
    let model = infer_model(events)?;
    let deputies = model.deputies;
    let state = model.initial();
    let mut rp = Replay {
        model,
        state,
        delivered: BTreeSet::new(),
        stands_seen: BTreeSet::new(),
        wins_seen: BTreeSet::new(),
        prefix: Vec::new(),
    };
    let mut replayed = 0usize;
    let mut divergence = None;
    for (at, ev) in events.iter().enumerate() {
        let (tag, dst, dir_send) = match &ev.kind {
            TraceKind::Send {
                dst, tag: Some(t), ..
            } => (t, *dst, true),
            TraceKind::Deliver {
                dst, tag: Some(t), ..
            } => (t, *dst, false),
            _ => continue,
        };
        let Some((etag, _)) = parse_tag(tag)? else {
            continue;
        };
        replayed += 1;
        if let Err(why) = rp.step(ev, &etag, dir_send, dst) {
            divergence = Some(Divergence {
                at,
                event: ev.render(),
                why,
                prefix: rp.prefix.clone(),
            });
            break;
        }
    }
    Ok(Conformance {
        events: events.len(),
        replayed,
        stands: rp.stands_seen.len(),
        wins: rp.wins_seen.len(),
        deputies,
        divergence,
    })
}

/// Parse a trace and check conformance, as `dlb-lint --conform` does.
/// `Err` = the text is not a well-formed trace; a divergence is not an
/// `Err` but an [`Code::E110`] diagnostic in the report.
pub fn check_conformance(text: &str) -> Result<(Report, Conformance), String> {
    let events = parse_trace(text)?;
    let conf = conform_election(&events)?;
    let mut report = Report::new("trace-conformance");
    let span = Span::program(&format!(
        "trace-conformance(events={}, deputies={}, stands={}, wins={})",
        conf.events, conf.deputies, conf.stands, conf.wins
    ));
    if let Some(div) = &conf.divergence {
        let mut notes = vec![
            format!("event {}: {}", div.at, div.event),
            format!("why: {}", div.why),
            format!("conforming prefix ({} election events):", div.prefix.len()),
        ];
        const SHOWN: usize = 12;
        if div.prefix.len() > SHOWN {
            notes.push(format!(
                "  (... {} earlier events)",
                div.prefix.len() - SHOWN
            ));
        }
        let skip = div.prefix.len().saturating_sub(SHOWN);
        notes.extend(div.prefix.iter().skip(skip).map(|l| format!("  {l}")));
        report.push(
            Diagnostic::new(
                Code::E110,
                span,
                "runtime election action is not enabled in the protocol model \
                 (refinement violation)",
            )
            .with_notes(notes),
        );
    }
    Ok((report, conf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_sim::render_trace;

    /// Hand-built conforming trace: three deputies (actors 1-3), deputy 0
    /// stands in term 1, both peers vote, deputy 0 wins and announces.
    fn happy_lines() -> Vec<String> {
        vec![
            "EV 10 SEND 1 2 56 candidacy term=1 cand=0 fresh=5".into(),
            "EV 10 SEND 1 3 56 candidacy term=1 cand=0 fresh=5".into(),
            "EV 20 DELIVER 1 2 56 candidacy term=1 cand=0 fresh=5".into(),
            "EV 21 SEND 2 1 56 vote term=1 voter=1 cand=0".into(),
            "EV 25 DELIVER 1 3 56 candidacy term=1 cand=0 fresh=5".into(),
            "EV 26 SEND 3 1 56 vote term=1 voter=2 cand=0".into(),
            "EV 30 DELIVER 2 1 56 vote term=1 voter=1 cand=0".into(),
            "EV 31 DELIVER 3 1 56 vote term=1 voter=2 cand=0".into(),
            "EV 40 SEND 1 2 48 promoted term=1 winner=0".into(),
            "EV 40 SEND 1 3 48 promoted term=1 winner=0".into(),
            "EV 40 SEND 1 0 48 promoted term=1 winner=0".into(),
            "EV 50 DELIVER 1 2 48 promoted term=1 winner=0".into(),
        ]
    }

    fn text_of(lines: &[String]) -> String {
        format!("DLBTRACE 1\n{}\n", lines.join("\n"))
    }

    #[test]
    fn conforming_trace_passes() {
        let (report, conf) = check_conformance(&text_of(&happy_lines())).unwrap();
        assert!(!report.has_errors(), "{}", report.render());
        assert!(conf.ok());
        assert_eq!(conf.deputies, 3);
        assert_eq!(conf.stands, 1);
        assert_eq!(conf.wins, 1);
        assert_eq!(conf.replayed, 12);
    }

    #[test]
    fn mutated_vote_term_is_a_refinement_violation() {
        let mut lines = happy_lines();
        lines[3] = lines[3].replace("vote term=1", "vote term=8");
        let (report, conf) = check_conformance(&text_of(&lines)).unwrap();
        assert!(report.has(Code::E110), "{}", report.render());
        let div = conf.divergence.expect("must diverge");
        assert_eq!(div.at, 3);
        assert!(div.why.contains("voting rules"), "{}", div.why);
        assert_eq!(div.prefix.len(), 3, "prefix = the three conforming events");
    }

    #[test]
    fn premature_promotion_is_a_refinement_violation() {
        // Promotion before any vote delivery: no modeled quorum.
        let lines: Vec<String> = happy_lines()
            .into_iter()
            .take(2)
            .chain(["EV 15 SEND 1 2 48 promoted term=1 winner=0".to_string()])
            .collect();
        let (report, conf) = check_conformance(&text_of(&lines)).unwrap();
        assert!(report.has(Code::E110), "{}", report.render());
        assert!(
            conf.divergence.unwrap().why.contains("no quorum"),
            "should name the missing quorum"
        );
    }

    #[test]
    fn duplicate_delivery_is_absorbed() {
        let mut lines = happy_lines();
        lines.push("EV 60 DELIVER 1 2 48 promoted term=1 winner=0".into()); // network dup
        let (report, conf) = check_conformance(&text_of(&lines)).unwrap();
        assert!(!report.has_errors(), "{}", report.render());
        assert!(conf.ok());
    }

    #[test]
    fn resend_after_delivery_is_absorbed() {
        let mut lines = happy_lines();
        lines.push("EV 61 SEND 1 2 56 candidacy term=1 cand=0 fresh=5".into()); // retry
        let (_, conf) = check_conformance(&text_of(&lines)).unwrap();
        assert!(conf.ok());
    }

    #[test]
    fn untagged_and_foreign_events_pass_through() {
        let lines = vec![
            "EV 1 WAKE 4".to_string(),
            "EV 2 SEND 4 5 100".to_string(),
            "EV 3 SEND 4 5 100 some-future-tag x=1".to_string(),
            "EV 4 CRASH 0".to_string(),
        ];
        let (report, conf) = check_conformance(&text_of(&lines)).unwrap();
        assert!(!report.has_errors(), "{}", report.render());
        assert_eq!(conf.replayed, 0);
        assert_eq!(conf.deputies, 0);
    }

    #[test]
    fn malformed_election_tag_is_a_parse_error() {
        let lines = vec!["EV 1 SEND 1 2 56 vote term=x voter=1 cand=0".to_string()];
        assert!(check_conformance(&text_of(&lines)).is_err());
    }

    #[test]
    fn standing_in_a_later_term_is_out_of_band_learning() {
        // Terms learned from untagged channels (pings, replicas): a first
        // stand at term 4 conforms even though no tagged traffic got there.
        let lines: Vec<String> = happy_lines()
            .iter()
            .map(|l| l.replace("term=1", "term=4"))
            .collect();
        let (report, conf) = check_conformance(&text_of(&lines)).unwrap();
        assert!(!report.has_errors(), "{}", report.render());
        assert!(conf.ok());
    }

    #[test]
    fn restanding_in_a_spent_term_is_a_refinement_violation() {
        // Deputy 1 saw term 1 (it voted in it), then stands in term 1
        // itself — term reuse, the raw material of split brain.
        let mut lines = happy_lines();
        lines.push("EV 70 SEND 2 3 56 candidacy term=1 cand=1 fresh=5".into());
        let (report, conf) = check_conformance(&text_of(&lines)).unwrap();
        assert!(report.has(Code::E110), "{}", report.render());
        assert!(
            conf.divergence.unwrap().why.contains("spent term"),
            "should name the term reuse"
        );
    }

    #[test]
    fn trace_round_trip_conforms() {
        // render → parse → conform, exercising the real format plumbing.
        let events = parse_trace(&text_of(&happy_lines())).unwrap();
        let again = parse_trace(&render_trace(&events)).unwrap();
        assert!(conform_election(&again).unwrap().ok());
    }
}
