//! # dlb-analyze — static plan linter + protocol model checker
//!
//! The compiler (`dlb-compiler`) derives facts — dependence distances,
//! hook overheads, strip-mine bounds — and the runtime (`dlb-core`)
//! trusts them. This crate closes the loop with two pillars sharing one
//! structured-diagnostics framework ([`diag`]):
//!
//! * **[`passes`]** — the plan linter: re-derives the analysis from the IR
//!   and checks a [`ParallelPlan`](dlb_compiler::ParallelPlan) against it
//!   (owner-computes legality, adjacency of work movement under carried
//!   dependences, hook-overhead budget, strip-mine bounds).
//! * **[`model`]** — the protocol model checker: exhaustively explores the
//!   master/slave restore protocol, the slave↔slave work-migration
//!   (transfer-window) protocol (both built from `dlb-core`'s production
//!   [`SenderWindow`](dlb_core::SenderWindow)/[`AckTracker`](dlb_core::AckTracker)/
//!   [`TransferWindow`](dlb_core::TransferWindow) rules), and the
//!   master-failover deputy election (mirroring
//!   [`DeputyState`](dlb_core::DeputyState)'s voting rules), and the
//!   mid-run join/rejoin handshake (incarnation-fenced admission with an
//!   ack-floored snapshot ship) for duplicate application, lost work,
//!   split-brain promotions, zombie-incarnation credit, stale-snapshot
//!   joins, and deadlock, with seeded-replayable counterexamples. Runtime-width instances are made
//!   tractable by symmetry and partial-order reduction ([`dlb_sim`]'s
//!   [`explore_reduced`](dlb_sim::explore_reduced)).
//! * **[`conform`]** — trace-conformance checking: replays a recorded
//!   kernel event trace (`dlb-lint --conform`) through the election model
//!   and reports any runtime action the model does not enable (E110).
//!
//! The `dlb-lint` binary runs every built-in program plus the protocol
//! models — including a deliberately broken split-brain election variant
//! that must yield a counterexample — and exits nonzero on any error or
//! missing counterexample: CI's merge gate.

#![forbid(unsafe_code)]

pub mod conform;
pub mod diag;
pub mod model;
pub mod passes;

pub use conform::{check_conformance, conform_election, Conformance, Divergence};
pub use diag::{Code, Diagnostic, Report, Severity};
pub use model::{
    check_election_protocol, check_election_protocol_with, check_join_protocol,
    check_join_protocol_with, check_protocol, check_protocol_with, check_transfer_protocol,
    check_transfer_protocol_with, CheckConfig,
};
pub use passes::{expected_pattern, lint, lint_builtins};
