//! Pillar 1: the plan linter.
//!
//! [`lint`] re-derives the dependence and property analysis from the
//! program — independently of whatever the plan claims — and checks that
//! the plan's pattern, movement rule, hook placement, and grain policy are
//! consistent with it. The passes correspond to the proofs the paper's
//! compiler must do before emitting SPMD code: owner-computes legality
//! (§2.1), adjacency of work movement under carried dependences (§3.2,
//! Fig. 1b), the 1 % hook-overhead budget (§4.2, Fig. 3), and strip-mine
//! bounds preservation (§4.4).

use crate::diag::{Code, Diagnostic, Report};
use dlb_compiler::plan::{GrainPolicy, MovementRule, ParallelPlan, Pattern};
use dlb_compiler::props;
use dlb_compiler::stripmine::strip_mine;
use dlb_compiler::{analyze, Affine, DepAnalysis, Program, Span, DEFAULT_MAX_OVERHEAD};

/// The pattern the classification rules demand for `program` — the same
/// decision procedure as `plan::compile`, applied to a fresh analysis.
/// `None` means no supported engine exists (carried dependences beyond
/// nearest-neighbour).
pub fn expected_pattern(program: &Program, da: &DepAnalysis) -> Option<Pattern> {
    let props = props::derive_with(program, da);
    if props.loop_carried_deps {
        if da.nearest_neighbor_only() {
            Some(Pattern::Pipelined)
        } else {
            None
        }
    } else if props.varying_loop_bounds {
        Some(Pattern::Shrinking)
    } else {
        Some(Pattern::Independent)
    }
}

/// Run every lint pass over `program` + `plan`.
pub fn lint(program: &Program, plan: &ParallelPlan) -> Report {
    let mut report = Report::new(plan.program.clone());
    let da = analyze(program);
    check_owner_computes(program, plan, &mut report);
    check_movement(program, plan, &da, &mut report);
    check_hooks(program, plan, &mut report);
    check_stripmine(program, plan, &mut report);
    report
}

/// Compile and lint every built-in program.
pub fn lint_builtins() -> Vec<Report> {
    dlb_compiler::programs::all_builtin()
        .iter()
        .map(|p| match dlb_compiler::compile(p) {
            Ok(plan) => lint(p, &plan),
            Err(e) => {
                let mut r = Report::new(p.name.clone());
                r.push(Diagnostic::new(
                    Code::E007,
                    Span::program(&p.name),
                    format!("built-in program failed to compile: {e}"),
                ));
                r
            }
        })
        .collect()
}

fn dloop_span(program: &Program) -> Span {
    let loops: Vec<&str> = program
        .path_to_distributed()
        .iter()
        .map(|l| l.var.as_str())
        .collect();
    Span::of_loop(&program.name, &loops)
}

/// Pass (a): owner-computes legality. For every array the plan moves with a
/// work unit, a write under the distributed loop must subscript the aligned
/// dimension with exactly the distributed variable — anything else stores
/// into an element owned by a different iteration (hence a different slave)
/// with no modeled transfer: a statically detected data race.
fn check_owner_computes(program: &Program, plan: &ParallelPlan, report: &mut Report) {
    let dvar = program.distributed_var.as_str();
    let ident = Affine::var(dvar);
    for (scope, stmt) in program.statements() {
        if !scope.contains(&dvar) {
            continue; // sequential section: no distributed ownership
        }
        for w in &stmt.writes {
            let Some(moved) = plan.moved_arrays.iter().find(|m| m.name == w.array) else {
                continue; // replicated or unknown array: no single owner
            };
            let Some(sub) = w.subs.get(moved.dim) else {
                continue; // arity errors are validate()'s job
            };
            let delta = sub.diff(&ident);
            if !(delta.is_constant() && delta.constant == 0) {
                report.push(
                    Diagnostic::new(
                        Code::E001,
                        program
                            .span_of(&stmt.label)
                            .unwrap_or_else(|| Span::program(&program.name)),
                        format!(
                            "write to `{}[{sub}]` in dim {} is owned by iteration `{sub}`, \
                             not the executing iteration `{dvar}`",
                            w.array, moved.dim
                        ),
                    )
                    .with_notes(vec![format!(
                        "array `{}` moves with the distributed variable `{dvar}`; \
                         owner-computes requires writes at `{dvar}` exactly",
                        w.array
                    )]),
                );
            }
        }
    }
}

/// Pass (b): movement/pattern legality against the re-derived dependences.
fn check_movement(program: &Program, plan: &ParallelPlan, da: &DepAnalysis, report: &mut Report) {
    let span = dloop_span(program);
    let carried_note = || {
        da.deps
            .iter()
            .filter(|d| {
                !matches!(d.distance, dlb_compiler::Distance::Zero)
                    && !matches!(d.distance, dlb_compiler::Distance::Global)
            })
            .map(|d| {
                format!(
                    "{:?} dependence on `{}`: {} -> {} at distance {:?}",
                    d.kind, d.array, d.src_stmt, d.dst_stmt, d.distance
                )
            })
            .collect::<Vec<_>>()
    };

    if da.has_carried() {
        if plan.movement == MovementRule::Direct {
            report.push(
                Diagnostic::new(
                    Code::E003,
                    span.clone(),
                    "plan allows direct (non-adjacent) work movement, but the distributed \
                     loop carries a dependence: moving a unit past a neighbour breaks the \
                     block distribution the dependences rely on (Fig. 1b)",
                )
                .with_notes(carried_note()),
            );
        }
        if plan.pattern == Pattern::Independent || plan.pattern == Pattern::Shrinking {
            report.push(
                Diagnostic::new(
                    Code::E002,
                    span.clone(),
                    format!(
                        "pattern {:?} treats distributed iterations as independent, but \
                         the loop carries a dependence",
                        plan.pattern
                    ),
                )
                .with_notes(carried_note()),
            );
        }
        if plan.pattern == Pattern::Pipelined && !da.nearest_neighbor_only() {
            report.push(
                Diagnostic::new(
                    Code::E006,
                    span.clone(),
                    "pipelined execution supports only nearest-neighbour (|distance| <= 1) \
                     carried dependences",
                )
                .with_notes(carried_note()),
            );
        }
    }

    match expected_pattern(program, da) {
        // Only report the generic mismatch when no sharper pass already
        // explained it.
        Some(expected)
            if expected != plan.pattern && !report.has(Code::E002) && !report.has(Code::E006) =>
        {
            report.push(Diagnostic::new(
                Code::E007,
                span.clone(),
                format!(
                    "plan pattern {:?} contradicts the dependence analysis, which \
                     requires {:?}",
                    plan.pattern, expected
                ),
            ));
        }
        None if !report.has(Code::E006) && !report.has(Code::E002) => {
            report.push(Diagnostic::new(
                Code::E006,
                span.clone(),
                "no supported engine: carried dependences are not nearest-neighbour",
            ));
        }
        _ => {}
    }

    if da.has_global() {
        report.push(Diagnostic::new(
            Code::W003,
            span.clone(),
            "a value is shared by all distributed iterations: expect broadcast-style \
             communication outside the distributed loop each invocation",
        ));
    }

    for (scope, stmt) in program.statements() {
        if stmt.conditional && scope.iter().any(|v| *v == program.distributed_var) {
            report.push(Diagnostic::new(
                Code::W002,
                program
                    .span_of(&stmt.label)
                    .unwrap_or_else(|| Span::program(&program.name)),
                "data-dependent iteration cost: compile-time flops figures are \
                 expectations, so balancing relies entirely on measured rates",
            ));
        }
    }
}

/// Pass (c), hooks: the chosen hook site must meet the overhead budget
/// whenever any site does; if no site can, the fallback placement is legal
/// but worth a warning.
fn check_hooks(program: &Program, plan: &ParallelPlan, report: &mut Report) {
    let chosen = plan.hooks.chosen_site();
    let site_span = |loop_var: &str| {
        let mut loops: Vec<&str> = Vec::new();
        for l in program.path_to_distributed() {
            loops.push(&l.var[..]);
            if l.var == loop_var {
                break;
            }
        }
        Span::of_loop(&program.name, &loops)
    };
    if chosen.acceptable(DEFAULT_MAX_OVERHEAD) {
        return;
    }
    if plan
        .hooks
        .sites
        .iter()
        .any(|s| s.acceptable(DEFAULT_MAX_OVERHEAD))
    {
        report.push(
            Diagnostic::new(
                Code::E004,
                site_span(&chosen.loop_var),
                format!(
                    "chosen hook site after `{}` costs {:.2}% of the compute between \
                     hooks, over the {:.0}% budget, while an acceptable site exists",
                    chosen.loop_var,
                    chosen.overhead * 100.0,
                    DEFAULT_MAX_OVERHEAD * 100.0
                ),
            )
            .with_notes(
                plan.hooks
                    .sites
                    .iter()
                    .map(|s| {
                        format!(
                            "site `{}` (depth {}): overhead {:.3}%",
                            s.loop_var,
                            s.depth,
                            s.overhead * 100.0
                        )
                    })
                    .collect(),
            ),
        );
    } else {
        report.push(Diagnostic::new(
            Code::W001,
            site_span(&chosen.loop_var),
            format!(
                "no hook site meets the {:.0}% budget; best-effort placement after \
                 `{}` at {:.2}% overhead",
                DEFAULT_MAX_OVERHEAD * 100.0,
                chosen.loop_var,
                chosen.overhead * 100.0
            ),
        ));
    }
}

/// Pass (c), strip mining: the grain policy must be well-formed, and the
/// strip-mine transformation of the pipelined loop must cover exactly the
/// original iteration space (the runtime clamps the last block; the blocked
/// bound may only overshoot by less than one block, and never undershoot).
fn check_stripmine(program: &Program, plan: &ParallelPlan, report: &mut Report) {
    let span = dloop_span(program);
    match plan.grain {
        GrainPolicy::FixedBlock { iterations: 0 } => {
            report.push(Diagnostic::new(
                Code::E005,
                span,
                "fixed grain of 0 iterations: every block is empty, so the pipelined \
                 loop drops all iterations",
            ));
            return;
        }
        GrainPolicy::AutoBlock { quantum_factor } if quantum_factor <= 0.0 => {
            report.push(Diagnostic::new(
                Code::E005,
                span,
                format!("auto grain with non-positive quantum factor {quantum_factor}"),
            ));
            return;
        }
        GrainPolicy::Unit => return, // nothing strip-mined
        _ => {}
    }
    let Some(pipe) = &plan.pipeline else {
        return;
    };
    let trips = pipe.inner_trips as i64;
    if trips == 0 {
        return;
    }
    // Exercise the real transformation at boundary-hostile block sizes.
    let candidates = [1, 7, trips, trips + 3];
    for block in candidates {
        let block = block.max(1);
        let Some(sm) = strip_mine(program, &pipe.inner_var, block) else {
            report.push(Diagnostic::new(
                Code::E005,
                span.clone(),
                format!(
                    "grain policy strip-mines `{}`, but no such For loop exists",
                    pipe.inner_var
                ),
            ));
            return;
        };
        // The blocked loop is named `<var>0`; covered = nblocks * block.
        let blocks_var = format!("{}0", pipe.inner_var);
        fn find_loop<'a>(
            nodes: &'a [dlb_compiler::Node],
            var: &str,
        ) -> Option<&'a dlb_compiler::Loop> {
            for n in nodes {
                if let dlb_compiler::Node::Loop(l) = n {
                    if l.var == var {
                        return Some(l);
                    }
                    if let Some(found) = find_loop(&l.body, var) {
                        return Some(found);
                    }
                }
            }
            None
        }
        let covered = find_loop(&sm.body, &blocks_var)
            .map(|l| sm.estimate_trips(l, &sm.default_env()).max(0) * block);
        match covered {
            Some(covered) if covered < trips => {
                report.push(Diagnostic::new(
                    Code::E005,
                    span.clone(),
                    format!(
                        "strip-mining `{}` by {block} covers {covered} of {trips} \
                         iterations: iterations dropped at the extent boundary",
                        pipe.inner_var
                    ),
                ));
                return;
            }
            Some(covered) if covered - trips >= block.max(1) => {
                report.push(Diagnostic::new(
                    Code::E005,
                    span.clone(),
                    format!(
                        "strip-mining `{}` by {block} covers {covered} iterations for a \
                         {trips}-trip loop: overshoot of a full block duplicates work \
                         even after the runtime clamp",
                        pipe.inner_var
                    ),
                ));
                return;
            }
            Some(_) => {}
            None => {
                report.push(Diagnostic::new(
                    Code::E005,
                    span.clone(),
                    format!(
                        "strip-mined program lost the blocked loop `{blocks_var}`; \
                         cannot prove bounds legality"
                    ),
                ));
                return;
            }
        }
    }
}
