//! Pillar 2: the protocol model checker.
//!
//! Drives `dlb-sim`'s explicit-state explorer over `dlb-core`'s abstracted
//! protocol systems — built from the *production*
//! [`SenderWindow`]/[`AckTracker`]/[`TransferWindow`] transition rules —
//! and converts verdicts into the shared diagnostics format.
//!
//! Four models, twelve safety properties (the distributed-self-scheduling
//! correctness conditions of Eleliemy & Ciorba and Zafari & Larsson):
//!
//! * [`RestoreModel`] — the master/survivors restore protocol:
//!   **no duplicate apply** ([`Code::E101`]), **no lost work**
//!   ([`Code::E102`]), **no deadlock** ([`Code::E103`]).
//! * [`TransferModel`] — the slave↔slave work-migration (MoveOrder)
//!   protocol, with drops, duplicates, re-sends, and a fail-stop receiver:
//!   **no duplicate unit** ([`Code::E104`]), **no lost unit**
//!   ([`Code::E105`]), **no transfer deadlock** ([`Code::E106`]).
//! * [`ElectionModel`] — the master-failover deputy election (one vote per
//!   term, newest-replica guard, majority quorum): **at most one master
//!   per term** ([`Code::E107`]), **no stale-replica winner**
//!   ([`Code::E108`]), **no election deadlock** ([`Code::E109`]).
//! * [`JoinModel`] — the mid-run join/rejoin handshake (incarnation-fenced
//!   admission, ack-floored snapshot shipping): **no double-incarnation
//!   credit** ([`Code::E111`]), **no stale-snapshot join**
//!   ([`Code::E112`]), **no join deadlock** ([`Code::E113`]).
//!
//! After the exhaustive pass, seeded random walks probe deeper
//! interleavings; any counterexample replays from its seed.
//!
//! [`SenderWindow`]: dlb_core::SenderWindow
//! [`AckTracker`]: dlb_core::AckTracker
//! [`TransferWindow`]: dlb_core::TransferWindow

use crate::diag::{Code, Diagnostic, Report};
use dlb_compiler::Span;
use dlb_core::session::model::{ElectionModel, JoinModel, RestoreModel, TransferModel};
use dlb_sim::{
    explore, explore_reduced, random_walks, Ample, Exploration, ReduceConfig, ReduceStats,
    Symmetric, Verdict,
};

/// Bounds for the exhaustive and sampled exploration.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    pub max_depth: usize,
    pub max_states: usize,
    /// Seed for the post-exhaustive random walks (0 walks disables).
    pub seed: u64,
    pub walks: u32,
    pub walk_depth: usize,
    /// Explore with symmetry + partial-order reduction
    /// ([`dlb_sim::explore_reduced`]); this is what makes runtime widths
    /// (16 survivors / deputies) checkable. Soundness is continuously
    /// re-validated by reduced-vs-full agreement tests on small configs.
    pub reduce: bool,
    /// With `reduce`, keep the exact visited-state set instead of 64-bit
    /// fingerprints — immune to hash collisions, at several times the
    /// memory (the escape hatch documented in DESIGN.md §13).
    pub exact: bool,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            max_depth: 64,
            max_states: 2_000_000,
            seed: 0xd1b,
            walks: 256,
            walk_depth: 200,
            reduce: true,
            exact: false,
        }
    }
}

/// Run the exhaustive pass with or without reductions, per `cfg`.
fn run_exhaustive<S>(model: &S, cfg: &CheckConfig) -> (Exploration, Option<ReduceStats>)
where
    S: Symmetric + Ample,
    S::State: std::hash::Hash,
{
    if cfg.reduce {
        let (ex, stats) = explore_reduced(
            model,
            &ReduceConfig {
                max_depth: cfg.max_depth,
                max_states: cfg.max_states,
                symmetry: true,
                ample: true,
                fingerprint: !cfg.exact,
            },
        );
        (ex, Some(stats))
    } else {
        (explore(model, cfg.max_depth, cfg.max_states), None)
    }
}

fn exhaustive_label(cfg: &CheckConfig) -> &'static str {
    if cfg.reduce {
        "reduced exhaustive exploration"
    } else {
        "exhaustive exploration"
    }
}

fn reduction_notes(stats: &Option<ReduceStats>) -> Vec<String> {
    match stats {
        Some(st) => vec![format!(
            "reduction: {} states expanded, {} actions pruned, visited set {} bytes",
            st.expanded, st.pruned_actions, st.visited_bytes
        )],
        None => Vec::new(),
    }
}

fn span_for(model: &RestoreModel) -> Span {
    // The protocol has no loop-nest location; encode the model shape as the
    // pseudo-program so the diagnostic names what was checked.
    Span::program(&format!(
        "restore-protocol(survivors={}, waves={:?}, drops={}, dups={}, dedup={})",
        model.survivors, model.waves, model.max_drops, model.max_dups, model.dedup_acks
    ))
}

fn span_for_transfer(model: &TransferModel) -> Span {
    Span::program(&format!(
        "transfer-protocol(units={}, receivers={}, moves={:?}, drops={}, dups={}, evicts={}, \
         dedup={})",
        model.units.len(),
        model.receivers,
        model.moves,
        model.max_drops,
        model.max_dups,
        model.max_evicts,
        model.dedup_transfers
    ))
}

/// Which diagnostic each class of verdict maps to — the restore, transfer,
/// and election models share the explorer but report distinct codes.
#[derive(Clone, Copy)]
struct CodeMap {
    /// Something existed twice (double apply / double owner / two masters).
    duplicate: Code,
    /// Something went missing or stale; selected when the violation detail
    /// contains `lost_marker`.
    lost: Code,
    deadlock: Code,
    lost_marker: &'static str,
}

const RESTORE_CODES: CodeMap = CodeMap {
    duplicate: Code::E101,
    lost: Code::E102,
    deadlock: Code::E103,
    lost_marker: "lost work",
};

const TRANSFER_CODES: CodeMap = CodeMap {
    duplicate: Code::E104,
    lost: Code::E105,
    deadlock: Code::E106,
    lost_marker: "lost work",
};

const ELECTION_CODES: CodeMap = CodeMap {
    duplicate: Code::E107,
    lost: Code::E108,
    deadlock: Code::E109,
    lost_marker: "stale replica",
};

const JOIN_CODES: CodeMap = CodeMap {
    duplicate: Code::E111,
    lost: Code::E112,
    deadlock: Code::E113,
    lost_marker: "stale snapshot",
};

fn push_exploration(
    span: Span,
    codes: CodeMap,
    ex: &Exploration,
    how: &str,
    extra_notes: Vec<String>,
    report: &mut Report,
) {
    let mut notes = vec![format!(
        "{how}: {} states, depth {}{}",
        ex.states,
        ex.depth,
        if ex.truncated { " (truncated)" } else { "" }
    )];
    notes.extend(extra_notes);
    if let Some(trace) = &ex.trace {
        if !trace.detail.is_empty() {
            notes.push(format!("violation: {}", trace.detail));
        }
        notes.push(format!("counterexample ({} steps):", trace.steps.len()));
        notes.extend(trace.steps.iter().map(|s| format!("  {s}")));
    }
    match ex.verdict {
        Verdict::Ok => {
            if ex.truncated {
                report.push(
                    Diagnostic::new(
                        Code::W102,
                        span,
                        format!(
                            "{how} was truncated by its bounds; the Ok verdict is bounded, \
                             not exhaustive"
                        ),
                    )
                    .with_notes(notes),
                );
            }
        }
        Verdict::Violation => {
            let detail = ex.trace.as_ref().map(|t| t.detail.as_str()).unwrap_or("");
            let code = if detail.contains(codes.lost_marker) {
                codes.lost
            } else {
                codes.duplicate
            };
            report.push(
                Diagnostic::new(code, span, format!("{how} found a safety violation"))
                    .with_notes(notes),
            );
        }
        Verdict::Deadlock => {
            report.push(
                Diagnostic::new(
                    codes.deadlock,
                    span,
                    format!("{how} reached a non-quiescent state with no enabled action"),
                )
                .with_notes(notes),
            );
        }
    }
}

/// Exhaustively check `model`, then (if still clean) run seeded random
/// walks past the exhaustive horizon.
pub fn check_protocol_with(model: &RestoreModel, cfg: CheckConfig) -> Report {
    let mut report = Report::new(format!(
        "restore-protocol{}",
        if model.dedup_acks { "" } else { " (no dedup)" }
    ));
    let span = span_for(model);
    let (ex, stats) = run_exhaustive(model, &cfg);
    push_exploration(
        span.clone(),
        RESTORE_CODES,
        &ex,
        exhaustive_label(&cfg),
        reduction_notes(&stats),
        &mut report,
    );
    if !report.has_errors() && cfg.walks > 0 {
        let walked = random_walks(model, cfg.seed, cfg.walks, cfg.walk_depth);
        // Walks only add findings: a clean sample after a clean exhaustive
        // pass is the expected quiet outcome.
        if walked.verdict != Verdict::Ok {
            push_exploration(
                span,
                RESTORE_CODES,
                &walked,
                &format!("random walks (seed {:#x})", cfg.seed),
                Vec::new(),
                &mut report,
            );
        }
    }
    report
}

/// Check the standard protocol configuration with default bounds — what
/// `dlb-lint` runs.
pub fn check_protocol() -> Report {
    check_protocol_with(&RestoreModel::standard(), CheckConfig::default())
}

/// Exhaustively check a work-migration (transfer-window) model, then run
/// seeded random walks past the exhaustive horizon. Duplicated units map
/// to [`Code::E104`], lost units to [`Code::E105`], a wedged migration to
/// [`Code::E106`].
pub fn check_transfer_protocol_with(model: &TransferModel, cfg: CheckConfig) -> Report {
    let mut report = Report::new(format!(
        "transfer-protocol{}",
        if model.dedup_transfers {
            ""
        } else {
            " (no dedup)"
        }
    ));
    let span = span_for_transfer(model);
    let (ex, stats) = run_exhaustive(model, &cfg);
    push_exploration(
        span.clone(),
        TRANSFER_CODES,
        &ex,
        exhaustive_label(&cfg),
        reduction_notes(&stats),
        &mut report,
    );
    if !report.has_errors() && cfg.walks > 0 {
        let walked = random_walks(model, cfg.seed, cfg.walks, cfg.walk_depth);
        if walked.verdict != Verdict::Ok {
            push_exploration(
                span,
                TRANSFER_CODES,
                &walked,
                &format!("random walks (seed {:#x})", cfg.seed),
                Vec::new(),
                &mut report,
            );
        }
    }
    report
}

/// Check the standard transfer-protocol configuration with default bounds
/// — what `dlb-lint` runs.
pub fn check_transfer_protocol() -> Report {
    check_transfer_protocol_with(&TransferModel::standard(), CheckConfig::default())
}

fn span_for_election(model: &ElectionModel) -> Span {
    Span::program(&format!(
        "election-protocol(deputies={}, fresh={:?}, stands={}, drops={}, dups={}, \
         one_vote_per_term={}, fresh_guard={})",
        model.deputies,
        model.fresh,
        model.max_stands,
        model.max_drops,
        model.max_dups,
        model.one_vote_per_term,
        model.fresh_guard
    ))
}

/// Exhaustively check a master-failover election model, then run seeded
/// random walks past the exhaustive horizon. Two masters promoted in one
/// term map to [`Code::E107`], a winner elected by a strictly fresher
/// quorum member to [`Code::E108`], a wedged election to [`Code::E109`].
pub fn check_election_protocol_with(model: &ElectionModel, cfg: CheckConfig) -> Report {
    let tag = match (model.one_vote_per_term, model.fresh_guard) {
        (true, true) => "",
        (false, _) => " (forgetful voters)",
        (_, false) => " (freshness-blind voters)",
    };
    let mut report = Report::new(format!("election-protocol{tag}"));
    let span = span_for_election(model);
    let (ex, stats) = run_exhaustive(model, &cfg);
    push_exploration(
        span.clone(),
        ELECTION_CODES,
        &ex,
        exhaustive_label(&cfg),
        reduction_notes(&stats),
        &mut report,
    );
    if !report.has_errors() && cfg.walks > 0 {
        let walked = random_walks(model, cfg.seed, cfg.walks, cfg.walk_depth);
        if walked.verdict != Verdict::Ok {
            push_exploration(
                span,
                ELECTION_CODES,
                &walked,
                &format!("random walks (seed {:#x})", cfg.seed),
                Vec::new(),
                &mut report,
            );
        }
    }
    report
}

/// Check the standard election configuration with default bounds — what
/// `dlb-lint` runs.
pub fn check_election_protocol() -> Report {
    check_election_protocol_with(&ElectionModel::standard(), CheckConfig::default())
}

fn span_for_join(model: &JoinModel) -> Span {
    Span::program(&format!(
        "join-protocol(slots={}, evicts={}, rejoins={}, drops={}, dups={}, \
         incarnation_fence={}, ack_floor={})",
        model.slots,
        model.max_evicts,
        model.max_rejoins,
        model.max_drops,
        model.max_dups,
        model.fence_incarnation,
        model.fence_epoch
    ))
}

/// Exhaustively check a mid-run join/rejoin model, then run seeded random
/// walks past the exhaustive horizon. A zombie incarnation credited after
/// a newer life was admitted maps to [`Code::E111`], a checkpoint ack
/// credited below the admission ack floor to [`Code::E112`], a wedged
/// join handshake to [`Code::E113`].
pub fn check_join_protocol_with(model: &JoinModel, cfg: CheckConfig) -> Report {
    let tag = match (model.fence_incarnation, model.fence_epoch) {
        (true, true) => "",
        (false, _) => " (no incarnation fence)",
        (_, false) => " (no ack floor)",
    };
    let mut report = Report::new(format!("join-protocol{tag}"));
    let span = span_for_join(model);
    let (ex, stats) = run_exhaustive(model, &cfg);
    push_exploration(
        span.clone(),
        JOIN_CODES,
        &ex,
        exhaustive_label(&cfg),
        reduction_notes(&stats),
        &mut report,
    );
    if !report.has_errors() && cfg.walks > 0 {
        let walked = random_walks(model, cfg.seed, cfg.walks, cfg.walk_depth);
        if walked.verdict != Verdict::Ok {
            push_exploration(
                span,
                JOIN_CODES,
                &walked,
                &format!("random walks (seed {:#x})", cfg.seed),
                Vec::new(),
                &mut report,
            );
        }
    }
    report
}

/// Check the standard join configuration with default bounds — what
/// `dlb-lint` runs.
pub fn check_join_protocol() -> Report {
    check_join_protocol_with(&JoinModel::standard(), CheckConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_protocol_is_clean_and_exhausted() {
        let report = check_protocol();
        assert!(!report.has_errors(), "{}", report.render());
        assert!(
            !report.has(Code::W102),
            "state space must be exhausted within bounds: {}",
            report.render()
        );
    }

    #[test]
    fn no_dedup_variant_double_applies() {
        let report = check_protocol_with(&RestoreModel::broken_no_dedup(), CheckConfig::default());
        assert!(report.has_errors(), "{}", report.render());
        assert!(report.has(Code::E101), "{}", report.render());
        // The counterexample trace must be present and replayable.
        let diag = report.errors().next().unwrap();
        assert!(
            diag.notes.iter().any(|n| n.contains("counterexample")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn lossy_network_without_resend_budget_still_converges() {
        // Sanity: with zero drop/dup budget the model is the happy path.
        let m = RestoreModel {
            max_drops: 0,
            max_dups: 0,
            ..RestoreModel::standard()
        };
        let report = check_protocol_with(&m, CheckConfig::default());
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn standard_transfer_protocol_is_clean_and_exhausted() {
        let report = check_transfer_protocol();
        assert!(!report.has_errors(), "{}", report.render());
        assert!(
            !report.has(Code::W102),
            "state space must be exhausted within bounds: {}",
            report.render()
        );
    }

    #[test]
    fn no_dedup_transfer_variant_duplicates_a_unit() {
        let report =
            check_transfer_protocol_with(&TransferModel::broken_no_dedup(), CheckConfig::default());
        assert!(report.has_errors(), "{}", report.render());
        assert!(report.has(Code::E104), "{}", report.render());
        // The counterexample trace must be present and replayable.
        let diag = report.errors().next().unwrap();
        assert!(
            diag.notes.iter().any(|n| n.contains("counterexample")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn standard_election_protocol_is_clean_and_exhausted() {
        let report = check_election_protocol();
        assert!(!report.has_errors(), "{}", report.render());
        assert!(
            !report.has(Code::W102),
            "state space must be exhausted within bounds: {}",
            report.render()
        );
    }

    #[test]
    fn split_brain_variant_promotes_two_masters() {
        let report = check_election_protocol_with(
            &ElectionModel::broken_split_brain(),
            CheckConfig::default(),
        );
        assert!(report.has_errors(), "{}", report.render());
        assert!(report.has(Code::E107), "{}", report.render());
        // The counterexample trace must be present and replayable.
        let diag = report.errors().next().unwrap();
        assert!(
            diag.notes.iter().any(|n| n.contains("counterexample")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn fresh_blind_variant_elects_a_stale_winner() {
        let report = check_election_protocol_with(
            &ElectionModel::broken_fresh_blind(),
            CheckConfig::default(),
        );
        assert!(report.has_errors(), "{}", report.render());
        assert!(report.has(Code::E108), "{}", report.render());
    }

    #[test]
    fn standard_join_protocol_is_clean_and_exhausted() {
        let report = check_join_protocol();
        assert!(!report.has_errors(), "{}", report.render());
        assert!(
            !report.has(Code::W102),
            "state space must be exhausted within bounds: {}",
            report.render()
        );
    }

    #[test]
    fn unfenced_join_variant_credits_a_zombie_incarnation() {
        let report = check_join_protocol_with(
            &JoinModel::broken_double_incarnation(),
            CheckConfig::default(),
        );
        assert!(report.has_errors(), "{}", report.render());
        assert!(report.has(Code::E111), "{}", report.render());
        // The counterexample trace must be present and replayable.
        let diag = report.errors().next().unwrap();
        assert!(
            diag.notes.iter().any(|n| n.contains("counterexample")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn unfloored_join_variant_books_a_stale_snapshot() {
        let report =
            check_join_protocol_with(&JoinModel::broken_stale_snapshot(), CheckConfig::default());
        assert!(report.has_errors(), "{}", report.render());
        assert!(report.has(Code::E112), "{}", report.render());
    }

    #[test]
    fn transfer_happy_path_without_faults_is_clean() {
        let m = TransferModel {
            max_drops: 0,
            max_dups: 0,
            max_evicts: 0,
            ..TransferModel::standard()
        };
        let report = check_transfer_protocol_with(&m, CheckConfig::default());
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn wide_models_check_clean_and_exhausted_with_reductions() {
        // A mid-size slice of what the lint-wide CI job runs at width 16:
        // with reductions on, the wide instances must still exhaust (no
        // W102) — this is the whole point of the reduction machinery.
        let cfg = CheckConfig {
            walks: 0,
            ..CheckConfig::default()
        };
        for report in [
            check_protocol_with(&RestoreModel::wide(6), cfg),
            check_transfer_protocol_with(&TransferModel::wide(6), cfg),
            check_election_protocol_with(&ElectionModel::wide(6), cfg),
            check_join_protocol_with(&JoinModel::wide(6), cfg),
        ] {
            assert!(!report.has_errors(), "{}", report.render());
            assert!(
                !report.has(Code::W102),
                "wide model must exhaust under reduction: {}",
                report.render()
            );
        }
    }

    #[test]
    fn reduction_does_not_change_any_verdict() {
        // Same models through the public API with reduction on and off:
        // identical diagnostic codes either way (the soundness contract,
        // checked end-to-end rather than per-explorer).
        let on = CheckConfig {
            walks: 0,
            ..CheckConfig::default()
        };
        let off = CheckConfig {
            reduce: false,
            ..on
        };
        let codes = |r: &crate::diag::Report| -> Vec<Code> {
            r.diagnostics.iter().map(|d| d.code).collect()
        };
        for model in [
            RestoreModel::standard(),
            RestoreModel::broken_no_dedup(),
            RestoreModel::wide(2),
        ] {
            assert_eq!(
                codes(&check_protocol_with(&model, on)),
                codes(&check_protocol_with(&model, off)),
                "restore codes diverged under reduction"
            );
        }
        for model in [
            TransferModel::standard(),
            TransferModel::broken_no_dedup(),
            TransferModel::wide(2),
        ] {
            assert_eq!(
                codes(&check_transfer_protocol_with(&model, on)),
                codes(&check_transfer_protocol_with(&model, off)),
                "transfer codes diverged under reduction"
            );
        }
        for model in [
            ElectionModel::standard(),
            ElectionModel::broken_split_brain(),
            ElectionModel::broken_fresh_blind(),
        ] {
            assert_eq!(
                codes(&check_election_protocol_with(&model, on)),
                codes(&check_election_protocol_with(&model, off)),
                "election codes diverged under reduction"
            );
        }
        for model in [
            JoinModel::standard(),
            JoinModel::broken_double_incarnation(),
            JoinModel::broken_stale_snapshot(),
        ] {
            assert_eq!(
                codes(&check_join_protocol_with(&model, on)),
                codes(&check_join_protocol_with(&model, off)),
                "join codes diverged under reduction"
            );
        }
    }

    #[test]
    fn exact_mode_matches_fingerprint_mode() {
        // The collision escape hatch must not change outcomes on models
        // small enough to compare.
        let fp = CheckConfig {
            walks: 0,
            ..CheckConfig::default()
        };
        let exact = CheckConfig { exact: true, ..fp };
        let a = check_protocol_with(&RestoreModel::standard(), fp);
        let b = check_protocol_with(&RestoreModel::standard(), exact);
        assert_eq!(a.has_errors(), b.has_errors());
        assert_eq!(a.has(Code::W102), b.has(Code::W102));
    }
}
