//! Pillar 2: the protocol model checker.
//!
//! Drives `dlb-sim`'s explicit-state explorer over `dlb-core`'s abstracted
//! protocol systems — built from the *production*
//! [`SenderWindow`]/[`AckTracker`]/[`TransferWindow`] transition rules —
//! and converts verdicts into the shared diagnostics format.
//!
//! Three models, nine safety properties (the distributed-self-scheduling
//! correctness conditions of Eleliemy & Ciorba and Zafari & Larsson):
//!
//! * [`RestoreModel`] — the master/survivors restore protocol:
//!   **no duplicate apply** ([`Code::E101`]), **no lost work**
//!   ([`Code::E102`]), **no deadlock** ([`Code::E103`]).
//! * [`TransferModel`] — the slave↔slave work-migration (MoveOrder)
//!   protocol, with drops, duplicates, re-sends, and a fail-stop receiver:
//!   **no duplicate unit** ([`Code::E104`]), **no lost unit**
//!   ([`Code::E105`]), **no transfer deadlock** ([`Code::E106`]).
//! * [`ElectionModel`] — the master-failover deputy election (one vote per
//!   term, newest-replica guard, majority quorum): **at most one master
//!   per term** ([`Code::E107`]), **no stale-replica winner**
//!   ([`Code::E108`]), **no election deadlock** ([`Code::E109`]).
//!
//! After the exhaustive pass, seeded random walks probe deeper
//! interleavings; any counterexample replays from its seed.
//!
//! [`SenderWindow`]: dlb_core::SenderWindow
//! [`AckTracker`]: dlb_core::AckTracker
//! [`TransferWindow`]: dlb_core::TransferWindow

use crate::diag::{Code, Diagnostic, Report};
use dlb_compiler::Span;
use dlb_core::session::model::{ElectionModel, RestoreModel, TransferModel};
use dlb_sim::{explore, random_walks, Exploration, Verdict};

/// Bounds for the exhaustive and sampled exploration.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    pub max_depth: usize,
    pub max_states: usize,
    /// Seed for the post-exhaustive random walks (0 walks disables).
    pub seed: u64,
    pub walks: u32,
    pub walk_depth: usize,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            max_depth: 64,
            max_states: 2_000_000,
            seed: 0xd1b,
            walks: 256,
            walk_depth: 200,
        }
    }
}

fn span_for(model: &RestoreModel) -> Span {
    // The protocol has no loop-nest location; encode the model shape as the
    // pseudo-program so the diagnostic names what was checked.
    Span::program(&format!(
        "restore-protocol(survivors={}, waves={:?}, drops={}, dups={}, dedup={})",
        model.survivors, model.waves, model.max_drops, model.max_dups, model.dedup_acks
    ))
}

fn span_for_transfer(model: &TransferModel) -> Span {
    Span::program(&format!(
        "transfer-protocol(units={}, moves={:?}, drops={}, dups={}, evict={}, dedup={})",
        model.units.len(),
        model.moves,
        model.max_drops,
        model.max_dups,
        model.allow_evict,
        model.dedup_transfers
    ))
}

/// Which diagnostic each class of verdict maps to — the restore, transfer,
/// and election models share the explorer but report distinct codes.
#[derive(Clone, Copy)]
struct CodeMap {
    /// Something existed twice (double apply / double owner / two masters).
    duplicate: Code,
    /// Something went missing or stale; selected when the violation detail
    /// contains `lost_marker`.
    lost: Code,
    deadlock: Code,
    lost_marker: &'static str,
}

const RESTORE_CODES: CodeMap = CodeMap {
    duplicate: Code::E101,
    lost: Code::E102,
    deadlock: Code::E103,
    lost_marker: "lost work",
};

const TRANSFER_CODES: CodeMap = CodeMap {
    duplicate: Code::E104,
    lost: Code::E105,
    deadlock: Code::E106,
    lost_marker: "lost work",
};

const ELECTION_CODES: CodeMap = CodeMap {
    duplicate: Code::E107,
    lost: Code::E108,
    deadlock: Code::E109,
    lost_marker: "stale replica",
};

fn push_exploration(span: Span, codes: CodeMap, ex: &Exploration, how: &str, report: &mut Report) {
    let mut notes = vec![format!(
        "{how}: {} states, depth {}{}",
        ex.states,
        ex.depth,
        if ex.truncated { " (truncated)" } else { "" }
    )];
    if let Some(trace) = &ex.trace {
        if !trace.detail.is_empty() {
            notes.push(format!("violation: {}", trace.detail));
        }
        notes.push(format!("counterexample ({} steps):", trace.steps.len()));
        notes.extend(trace.steps.iter().map(|s| format!("  {s}")));
    }
    match ex.verdict {
        Verdict::Ok => {
            if ex.truncated {
                report.push(
                    Diagnostic::new(
                        Code::W101,
                        span,
                        format!("{how} hit its bounds before exhausting the state space"),
                    )
                    .with_notes(notes),
                );
            }
        }
        Verdict::Violation => {
            let detail = ex.trace.as_ref().map(|t| t.detail.as_str()).unwrap_or("");
            let code = if detail.contains(codes.lost_marker) {
                codes.lost
            } else {
                codes.duplicate
            };
            report.push(
                Diagnostic::new(code, span, format!("{how} found a safety violation"))
                    .with_notes(notes),
            );
        }
        Verdict::Deadlock => {
            report.push(
                Diagnostic::new(
                    codes.deadlock,
                    span,
                    format!("{how} reached a non-quiescent state with no enabled action"),
                )
                .with_notes(notes),
            );
        }
    }
}

/// Exhaustively check `model`, then (if still clean) run seeded random
/// walks past the exhaustive horizon.
pub fn check_protocol_with(model: &RestoreModel, cfg: CheckConfig) -> Report {
    let mut report = Report::new(format!(
        "restore-protocol{}",
        if model.dedup_acks { "" } else { " (no dedup)" }
    ));
    let span = span_for(model);
    let ex = explore(model, cfg.max_depth, cfg.max_states);
    push_exploration(
        span.clone(),
        RESTORE_CODES,
        &ex,
        "exhaustive exploration",
        &mut report,
    );
    if !report.has_errors() && cfg.walks > 0 {
        let walked = random_walks(model, cfg.seed, cfg.walks, cfg.walk_depth);
        // Walks only add findings: a clean sample after a clean exhaustive
        // pass is the expected quiet outcome.
        if walked.verdict != Verdict::Ok {
            push_exploration(
                span,
                RESTORE_CODES,
                &walked,
                &format!("random walks (seed {:#x})", cfg.seed),
                &mut report,
            );
        }
    }
    report
}

/// Check the standard protocol configuration with default bounds — what
/// `dlb-lint` runs.
pub fn check_protocol() -> Report {
    check_protocol_with(&RestoreModel::standard(), CheckConfig::default())
}

/// Exhaustively check a work-migration (transfer-window) model, then run
/// seeded random walks past the exhaustive horizon. Duplicated units map
/// to [`Code::E104`], lost units to [`Code::E105`], a wedged migration to
/// [`Code::E106`].
pub fn check_transfer_protocol_with(model: &TransferModel, cfg: CheckConfig) -> Report {
    let mut report = Report::new(format!(
        "transfer-protocol{}",
        if model.dedup_transfers {
            ""
        } else {
            " (no dedup)"
        }
    ));
    let span = span_for_transfer(model);
    let ex = explore(model, cfg.max_depth, cfg.max_states);
    push_exploration(
        span.clone(),
        TRANSFER_CODES,
        &ex,
        "exhaustive exploration",
        &mut report,
    );
    if !report.has_errors() && cfg.walks > 0 {
        let walked = random_walks(model, cfg.seed, cfg.walks, cfg.walk_depth);
        if walked.verdict != Verdict::Ok {
            push_exploration(
                span,
                TRANSFER_CODES,
                &walked,
                &format!("random walks (seed {:#x})", cfg.seed),
                &mut report,
            );
        }
    }
    report
}

/// Check the standard transfer-protocol configuration with default bounds
/// — what `dlb-lint` runs.
pub fn check_transfer_protocol() -> Report {
    check_transfer_protocol_with(&TransferModel::standard(), CheckConfig::default())
}

fn span_for_election(model: &ElectionModel) -> Span {
    Span::program(&format!(
        "election-protocol(deputies={}, fresh={:?}, stands={}, drops={}, dups={}, \
         one_vote_per_term={}, fresh_guard={})",
        model.deputies,
        model.fresh,
        model.max_stands,
        model.max_drops,
        model.max_dups,
        model.one_vote_per_term,
        model.fresh_guard
    ))
}

/// Exhaustively check a master-failover election model, then run seeded
/// random walks past the exhaustive horizon. Two masters promoted in one
/// term map to [`Code::E107`], a winner elected by a strictly fresher
/// quorum member to [`Code::E108`], a wedged election to [`Code::E109`].
pub fn check_election_protocol_with(model: &ElectionModel, cfg: CheckConfig) -> Report {
    let tag = match (model.one_vote_per_term, model.fresh_guard) {
        (true, true) => "",
        (false, _) => " (forgetful voters)",
        (_, false) => " (freshness-blind voters)",
    };
    let mut report = Report::new(format!("election-protocol{tag}"));
    let span = span_for_election(model);
    let ex = explore(model, cfg.max_depth, cfg.max_states);
    push_exploration(
        span.clone(),
        ELECTION_CODES,
        &ex,
        "exhaustive exploration",
        &mut report,
    );
    if !report.has_errors() && cfg.walks > 0 {
        let walked = random_walks(model, cfg.seed, cfg.walks, cfg.walk_depth);
        if walked.verdict != Verdict::Ok {
            push_exploration(
                span,
                ELECTION_CODES,
                &walked,
                &format!("random walks (seed {:#x})", cfg.seed),
                &mut report,
            );
        }
    }
    report
}

/// Check the standard election configuration with default bounds — what
/// `dlb-lint` runs.
pub fn check_election_protocol() -> Report {
    check_election_protocol_with(&ElectionModel::standard(), CheckConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_protocol_is_clean_and_exhausted() {
        let report = check_protocol();
        assert!(!report.has_errors(), "{}", report.render());
        assert!(
            !report.has(Code::W101),
            "state space must be exhausted within bounds: {}",
            report.render()
        );
    }

    #[test]
    fn no_dedup_variant_double_applies() {
        let report = check_protocol_with(&RestoreModel::broken_no_dedup(), CheckConfig::default());
        assert!(report.has_errors(), "{}", report.render());
        assert!(report.has(Code::E101), "{}", report.render());
        // The counterexample trace must be present and replayable.
        let diag = report.errors().next().unwrap();
        assert!(
            diag.notes.iter().any(|n| n.contains("counterexample")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn lossy_network_without_resend_budget_still_converges() {
        // Sanity: with zero drop/dup budget the model is the happy path.
        let m = RestoreModel {
            max_drops: 0,
            max_dups: 0,
            ..RestoreModel::standard()
        };
        let report = check_protocol_with(&m, CheckConfig::default());
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn standard_transfer_protocol_is_clean_and_exhausted() {
        let report = check_transfer_protocol();
        assert!(!report.has_errors(), "{}", report.render());
        assert!(
            !report.has(Code::W101),
            "state space must be exhausted within bounds: {}",
            report.render()
        );
    }

    #[test]
    fn no_dedup_transfer_variant_duplicates_a_unit() {
        let report =
            check_transfer_protocol_with(&TransferModel::broken_no_dedup(), CheckConfig::default());
        assert!(report.has_errors(), "{}", report.render());
        assert!(report.has(Code::E104), "{}", report.render());
        // The counterexample trace must be present and replayable.
        let diag = report.errors().next().unwrap();
        assert!(
            diag.notes.iter().any(|n| n.contains("counterexample")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn standard_election_protocol_is_clean_and_exhausted() {
        let report = check_election_protocol();
        assert!(!report.has_errors(), "{}", report.render());
        assert!(
            !report.has(Code::W101),
            "state space must be exhausted within bounds: {}",
            report.render()
        );
    }

    #[test]
    fn split_brain_variant_promotes_two_masters() {
        let report = check_election_protocol_with(
            &ElectionModel::broken_split_brain(),
            CheckConfig::default(),
        );
        assert!(report.has_errors(), "{}", report.render());
        assert!(report.has(Code::E107), "{}", report.render());
        // The counterexample trace must be present and replayable.
        let diag = report.errors().next().unwrap();
        assert!(
            diag.notes.iter().any(|n| n.contains("counterexample")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn fresh_blind_variant_elects_a_stale_winner() {
        let report = check_election_protocol_with(
            &ElectionModel::broken_fresh_blind(),
            CheckConfig::default(),
        );
        assert!(report.has_errors(), "{}", report.render());
        assert!(report.has(Code::E108), "{}", report.render());
    }

    #[test]
    fn transfer_happy_path_without_faults_is_clean() {
        let m = TransferModel {
            max_drops: 0,
            max_dups: 0,
            allow_evict: false,
            ..TransferModel::standard()
        };
        let report = check_transfer_protocol_with(&m, CheckConfig::default());
        assert!(!report.has_errors(), "{}", report.render());
    }
}
