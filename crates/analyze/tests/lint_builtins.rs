//! End-to-end linter tests: every built-in plan must lint clean, and
//! deliberately broken plans/programs must produce the coded diagnostic
//! the catalog promises (ISSUE acceptance: non-adjacent movement under a
//! carried dependence, zero-sized grain, owner-computes violation, and a
//! protocol variant that acks without deduplicating).

use dlb_analyze::{
    check_election_protocol, check_election_protocol_with, check_protocol_with, lint,
    lint_builtins, CheckConfig, Code,
};
use dlb_compiler::ir::build::*;
use dlb_compiler::programs;
use dlb_compiler::{compile, Affine, GrainPolicy, MovementRule, Program};
use dlb_core::{ElectionModel, RestoreModel};

#[test]
fn every_builtin_plan_lints_clean() {
    let reports = lint_builtins();
    assert_eq!(reports.len(), programs::all_builtin().len());
    for report in &reports {
        assert!(
            !report.has_errors(),
            "built-in plan must lint clean:\n{}",
            report.render()
        );
    }
}

#[test]
fn direct_movement_with_carried_dep_is_e003() {
    // SOR's sweep carries nearest-neighbour dependences; the compiler
    // restricts movement to AdjacentOnly. Force Direct and the linter must
    // reject the plan with the adjacency diagnostic.
    let program = programs::sor(64, 2);
    let mut plan = compile(&program).expect("sor compiles");
    assert_eq!(plan.movement, MovementRule::AdjacentOnly);
    plan.movement = MovementRule::Direct;
    let report = lint(&program, &plan);
    assert!(report.has(Code::E003), "{}", report.render());
    assert!(report.has_errors());
    // The diagnostic must carry the carried-dependence evidence.
    let e003 = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::E003)
        .unwrap();
    assert!(
        e003.notes.iter().any(|n| n.contains("distance")),
        "{}",
        report.render()
    );
}

#[test]
fn zero_iteration_grain_is_e005() {
    let program = programs::sor(64, 2);
    let mut plan = compile(&program).expect("sor compiles");
    plan.grain = GrainPolicy::FixedBlock { iterations: 0 };
    let report = lint(&program, &plan);
    assert!(report.has(Code::E005), "{}", report.render());
}

#[test]
fn non_positive_quantum_factor_is_e005() {
    let program = programs::sor(64, 2);
    let mut plan = compile(&program).expect("sor compiles");
    plan.grain = GrainPolicy::AutoBlock {
        quantum_factor: 0.0,
    };
    let report = lint(&program, &plan);
    assert!(report.has(Code::E005), "{}", report.render());
}

/// A one-loop program whose single statement writes `x[i + write_off]`.
/// With `write_off == 0` it is a legal owner-computes program; any other
/// offset stores into an element owned by a different iteration.
fn offset_writer(write_off: i64) -> Program {
    let n = Affine::var("n");
    let i = Affine::var("i");
    Program {
        name: "offset-writer".into(),
        params: vec![param("n", 64)],
        arrays: vec![array("x", vec![n.clone() + 2])],
        body: vec![for_loop(
            "i",
            0i64,
            n.clone(),
            vec![stmt(
                "x[i+off] = f(x[i])",
                vec![aref("x", vec![i.clone() + write_off])],
                vec![aref("x", vec![i.clone()])],
                4.0,
            )],
        )],
        distributed_var: "i".into(),
        distributed_array: "x".into(),
        distributed_dim: 0,
    }
}

#[test]
fn misaligned_write_to_moved_array_is_e001() {
    // Compile the aligned variant to get a plan that moves `x`, then lint
    // the misaligned program against it — modeling a plan that went stale
    // relative to the code it was derived from.
    let clean = offset_writer(0);
    let plan = compile(&clean).expect("aligned variant compiles");
    assert!(
        plan.moved_arrays.iter().any(|m| m.name == "x"),
        "distributed array must move with the work unit"
    );
    assert!(!lint(&clean, &plan).has(Code::E001));

    let skewed = offset_writer(1);
    let report = lint(&skewed, &plan);
    assert!(report.has(Code::E001), "{}", report.render());
}

#[test]
fn standard_election_is_exhaustively_clean() {
    let report = check_election_protocol();
    assert!(!report.has_errors(), "{}", report.render());
    assert!(
        !report.has(Code::W101),
        "the election state space must be exhausted, not truncated:\n{}",
        report.render()
    );
}

#[test]
fn forgetful_voter_election_is_e107_with_counterexample() {
    let report =
        check_election_protocol_with(&ElectionModel::broken_split_brain(), CheckConfig::default());
    assert!(report.has(Code::E107), "{}", report.render());
    let diag = report.errors().next().expect("an error diagnostic");
    assert!(
        diag.notes.iter().any(|n| n.contains("counterexample")),
        "counterexample trace must accompany the split brain:\n{}",
        report.render()
    );
    assert!(
        diag.notes.iter().any(|n| n.contains("split brain")),
        "{}",
        report.render()
    );
}

#[test]
fn ack_without_dedup_protocol_is_e101_with_counterexample() {
    let report = check_protocol_with(&RestoreModel::broken_no_dedup(), CheckConfig::default());
    assert!(report.has(Code::E101), "{}", report.render());
    let diag = report.errors().next().expect("an error diagnostic");
    assert!(
        diag.notes.iter().any(|n| n.contains("counterexample")),
        "counterexample trace must accompany the violation:\n{}",
        report.render()
    );
}
