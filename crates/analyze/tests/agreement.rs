//! Property test: the analyzer's independently re-derived pattern verdict
//! must agree with both the compiler's emitted plan and the runtime's
//! engine selection (`dlb_core::engine_for`) — for every built-in program
//! across a sweep of problem sizes. Divergence here would mean the linter
//! certifies plans for an engine the runtime will never pick.

use dlb_analyze::expected_pattern;
use dlb_compiler::{analyze, compile, programs, Pattern, Program};
use dlb_core::{engine_for, EngineKind};

fn engine_of(pattern: Pattern) -> EngineKind {
    match pattern {
        Pattern::Independent => EngineKind::Independent,
        Pattern::Pipelined => EngineKind::Pipelined,
        Pattern::Shrinking => EngineKind::Shrinking,
    }
}

fn assert_agreement(program: &Program) {
    let da = analyze(program);
    let expected = expected_pattern(program, &da)
        .unwrap_or_else(|| panic!("built-in `{}` must have a supported engine", program.name));
    let plan = compile(program)
        .unwrap_or_else(|e| panic!("built-in `{}` must compile: {e}", program.name));
    assert_eq!(
        expected, plan.pattern,
        "analyzer and compiler disagree on `{}`",
        program.name
    );
    assert_eq!(
        engine_of(expected),
        engine_for(&plan),
        "analyzer verdict and runtime engine selection disagree on `{}`",
        program.name
    );
}

#[test]
fn analyzer_agrees_with_runtime_for_default_builtins() {
    for program in programs::all_builtin() {
        assert_agreement(&program);
    }
}

#[test]
fn agreement_holds_across_problem_size_sweep() {
    // Classification must be a property of the loop nest, not the problem
    // size: sweep sizes and repetition counts for every built-in
    // constructor. (Sizes stay >= 4 so stencil interiors are non-empty —
    // an empty distributed loop is a compile error by design.)
    let sizes = [4i64, 9, 17, 64, 257];
    let reps = [1i64, 2, 5];
    for &n in &sizes {
        for &r in &reps {
            assert_agreement(&programs::matmul(n, r));
            assert_agreement(&programs::sor(n, r));
            assert_agreement(&programs::jacobi(n, r));
            assert_agreement(&programs::quadrature(n, r));
        }
        assert_agreement(&programs::lu(n));
    }
}
