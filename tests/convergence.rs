//! Data-dependent WHILE termination (§4.1): the master reduces a
//! convergence metric at each invocation boundary and decides whether the
//! distributed loop runs again — here with a damped Jacobi solver.

use dlb::apps::{Calibration, Jacobi};
use dlb::core::driver::{run, AppSpec, RunConfig};
use dlb::core::kernels::IndependentKernel;
use dlb::sim::{LoadModel, NodeConfig};
use std::sync::Arc;

fn plan_for(j: &Jacobi) -> dlb::compiler::ParallelPlan {
    // Jacobi is MM-shaped for the compiler: an independent distributed
    // loop inside a data-dependent WHILE. Build the IR directly.
    use dlb::compiler::ir::build::*;
    use dlb::compiler::{Affine, Program};
    let n = Affine::var("n");
    let i = Affine::var("i");
    let k = Affine::var("k");
    let program = Program {
        name: "jacobi".into(),
        params: vec![param("n", j.n_units() as i64)],
        arrays: vec![
            array("a", vec![n.clone(), n.clone()]),
            array("x", vec![n.clone()]),
            array("xn", vec![n.clone()]),
        ],
        body: vec![while_loop(
            "t",
            40,
            1_000_000i64,
            vec![for_loop(
                "i",
                0i64,
                n.clone(),
                vec![for_loop(
                    "k",
                    0i64,
                    n.clone(),
                    vec![stmt(
                        "xn[i] += a[i][k] * x[k]",
                        vec![aref("xn", vec![i.clone()])],
                        vec![
                            aref("a", vec![i.clone(), k.clone()]),
                            aref("x", vec![k.clone()]),
                        ],
                        2.0,
                    )],
                )],
            )],
        )],
        distributed_var: "i".into(),
        distributed_array: "xn".into(),
        distributed_dim: 0,
    };
    let plan = dlb::compiler::compile(&program).unwrap();
    assert_eq!(
        plan.outer,
        dlb::compiler::OuterControl::DataDependent { est: 40 },
        "compiler must flag the WHILE for master control"
    );
    plan
}

#[test]
fn jacobi_converges_early_and_matches_sequential() {
    let j = Arc::new(Jacobi::new(48, 1e-6, 500, 3, &Calibration::new(0.01)));
    let plan = plan_for(&j);
    let (x_seq, sweeps_seq) = j.sequential();
    assert!(sweeps_seq < 500, "must converge before the bound");

    let report = run(
        AppSpec::Independent(j.clone()),
        &plan,
        RunConfig::homogeneous(4),
    );
    let x_par = Jacobi::result_x(&report.result);
    assert_eq!(x_par, x_seq, "solution must match sequential bitwise");
    // The master must have stopped at convergence, not the upper bound:
    // per-invocation statuses are >= slaves, so a full 500-sweep run would
    // produce far more statuses than ~sweeps_seq invocations do.
    assert!(
        report.stats.statuses < 500,
        "looks like the loop ran to the bound: {} statuses",
        report.stats.statuses
    );
    assert!(j.residual_of(&x_par) < 1e-6);
}

#[test]
fn jacobi_converges_under_load_with_movement() {
    let j = Arc::new(Jacobi::new(64, 1e-5, 400, 5, &Calibration::new(0.001)));
    let plan = plan_for(&j);
    let mut cfg = RunConfig::homogeneous(4);
    cfg.slave_nodes[1] = NodeConfig::with_load(LoadModel::Constant(2));
    let report = run(AppSpec::Independent(j.clone()), &plan, cfg);
    let (x_seq, _) = j.sequential();
    assert_eq!(Jacobi::result_x(&report.result), x_seq);
    assert!(
        report.stats.units_moved > 0,
        "expected rebalancing under load: {:?}",
        report.stats
    );
}

#[test]
fn fixed_count_kernels_unaffected_by_convergence_api() {
    use dlb::apps::MatMul;
    // MatMul keeps the default `converged` (never) and must run all reps.
    let mm = Arc::new(MatMul::new(24, 3, 1, &Calibration::new(0.01)));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let r = run(
        AppSpec::Independent(mm.clone()),
        &plan,
        RunConfig::homogeneous(3),
    );
    assert_eq!(MatMul::result_c(&r.result), mm.sequential());
}
