//! Edge-of-the-envelope configurations: minimal units per slave, many
//! slaves, single-unit problems, and tiny pipelines.

use dlb::apps::{Calibration, Lu, MatMul, Sor};
use dlb::core::driver::{run, AppSpec, RunConfig};
use dlb::sim::{LoadModel, NodeConfig};
use std::sync::Arc;

fn cal() -> Calibration {
    Calibration::new(0.01)
}

#[test]
fn mm_units_equal_slaves() {
    // One row per slave: nothing can move (min_per_slave = 1), but the run
    // must complete and verify.
    let mm = Arc::new(MatMul::new(4, 2, 1, &cal()));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(4);
    cfg.slave_nodes[0] = NodeConfig::with_load(LoadModel::Constant(2));
    let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
    assert_eq!(MatMul::result_c(&r.result), mm.sequential());
}

#[test]
fn mm_sixteen_slaves() {
    let mm = Arc::new(MatMul::new(64, 2, 1, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(16);
    cfg.slave_nodes[5] = NodeConfig::with_load(LoadModel::Constant(1));
    cfg.slave_nodes[11] = NodeConfig::with_load(LoadModel::Constant(3));
    let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
    assert_eq!(MatMul::result_c(&r.result), mm.sequential());
    assert!(r.stats.units_moved > 0);
}

#[test]
fn sor_one_column_per_slave() {
    // 3 interior columns on 3 slaves: the boundary chain is as tight as it
    // gets and no movement is possible.
    let sor = Arc::new(Sor::new(5, 4, 1, &cal()));
    let plan = dlb::compiler::compile(&sor.program()).unwrap();
    let r = run(
        AppSpec::Pipelined(sor.clone()),
        &plan,
        RunConfig::homogeneous(3),
    );
    assert_eq!(sor.result_grid(&r.result), sor.sequential());
    assert_eq!(r.stats.units_moved, 0);
}

#[test]
fn sor_single_sweep() {
    let sor = Arc::new(Sor::new(18, 1, 2, &cal()));
    let plan = dlb::compiler::compile(&sor.program()).unwrap();
    let r = run(
        AppSpec::Pipelined(sor.clone()),
        &plan,
        RunConfig::homogeneous(4),
    );
    assert_eq!(sor.result_grid(&r.result), sor.sequential());
}

#[test]
fn lu_n_slightly_above_slaves() {
    // 6 columns on 4 slaves: within a few steps some slaves have no active
    // work at all.
    let lu = Arc::new(Lu::new(6, 3, &cal()));
    let plan = dlb::compiler::compile(&lu.program()).unwrap();
    let r = run(
        AppSpec::Shrinking(lu.clone()),
        &plan,
        RunConfig::homogeneous(4),
    );
    assert_eq!(Lu::result_cols(&r.result), lu.sequential());
}

#[test]
fn lu_two_by_two() {
    let lu = Arc::new(Lu::new(2, 1, &cal()));
    let plan = dlb::compiler::compile(&lu.program()).unwrap();
    let r = run(
        AppSpec::Shrinking(lu.clone()),
        &plan,
        RunConfig::homogeneous(2),
    );
    assert_eq!(Lu::result_cols(&r.result), lu.sequential());
}

#[test]
fn extreme_load_many_tasks() {
    // A slave at 1/9 speed: the balancer must shed almost everything.
    let mm = Arc::new(MatMul::new(40, 2, 1, &Calibration::new(0.001)));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(4);
    cfg.slave_nodes[0] = NodeConfig::with_load(LoadModel::Constant(8));
    let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
    assert_eq!(MatMul::result_c(&r.result), mm.sequential());
    // A static split is gated by the slow node: 10 units × 2 reps ×
    // 3.2 s/unit × 9x slowdown = 576 s. Ideal balanced ≈ 82 s. Require the
    // balancer to land much nearer the ideal than the static bound.
    assert!(
        r.compute_time.as_secs_f64() < 180.0,
        "balancing ineffective: {:?}",
        r.compute_time
    );
}

#[test]
fn all_slaves_loaded_equally_no_movement() {
    // Uniform degradation is *not* an imbalance.
    let mm = Arc::new(MatMul::new(32, 2, 1, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(4);
    for n in &mut cfg.slave_nodes {
        *n = NodeConfig::with_load(LoadModel::Constant(1));
    }
    let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
    assert_eq!(MatMul::result_c(&r.result), mm.sequential());
    assert_eq!(r.stats.units_moved, 0, "{:?}", r.stats);
}
