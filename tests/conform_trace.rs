//! End-to-end refinement check: record the kernel event trace of a
//! 16-slave chaos run whose master is crashed mid-flight, then replay the
//! election traffic through the protocol model — the library path behind
//! `dlb-lint --conform`. The recorded trace must conform; a mutated copy
//! (one vote's term bumped) must yield the DLB-E110 refinement violation.

use dlb::analyze::{check_conformance, Code};
use dlb::apps::{Calibration, MatMul};
use dlb::core::driver::{try_run, AppSpec, RunConfig};
use dlb::sim::{parse_trace, FaultPlan, SimTime};
use std::sync::Arc;

const SLAVES: usize = 16;

/// Node 0 is the master; node `i + 1` is slave `i`.
const MASTER_NODE: usize = 0;

/// Run the 16-slave matmul with the master crashed at 200 ms and the
/// event trace recorded; returns the rendered trace text.
fn recorded_chaos_trace() -> String {
    let k = Arc::new(MatMul::new(32, 3, 7, &Calibration::new(0.05)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(SLAVES);
    cfg.balancer.enabled = true;
    cfg.fault_plan = Some(FaultPlan::new(6001).crash(MASTER_NODE, SimTime(200_000)));
    cfg.record_trace = true;
    let report = try_run(AppSpec::Independent(k.clone()), &plan, cfg)
        .expect("the run must survive the master crash");
    assert!(
        report.recovery.elections_held >= 1,
        "the crash must force an election: {:?}",
        report.recovery
    );
    dlb::sim::render_trace(&report.sim.trace)
}

#[test]
fn chaos_trace_conforms_and_a_mutated_one_does_not() {
    let text = recorded_chaos_trace();
    assert!(
        parse_trace(&text).is_ok(),
        "recorded trace must round-trip the stable format"
    );

    // The genuine trace refines the model.
    let (report, conf) = check_conformance(&text).expect("well-formed trace");
    assert!(
        !report.has_errors(),
        "recorded election must conform:\n{}",
        report.render()
    );
    assert!(conf.ok());
    assert!(
        conf.stands >= 1 && conf.wins >= 1,
        "the failover must show up in the replay: {conf:?}"
    );
    assert!(
        conf.deputies >= 2,
        "candidacy fan-out must reveal the deputy set: {conf:?}"
    );

    // Mutate one vote's term: the replayed vote is no longer one the
    // model's rules grant, and the divergence carries its prefix.
    let needle = "vote term=";
    let at = text.find(needle).expect("an election implies vote traffic");
    let mut mutated = text.clone();
    mutated.insert(at + needle.len(), '9');
    assert_ne!(mutated, text);
    let (report, conf) = check_conformance(&mutated).expect("still well-formed");
    assert!(
        report.has(Code::E110),
        "mutated vote must be a refinement violation:\n{}",
        report.render()
    );
    let div = conf.divergence.expect("divergence must be reported");
    assert!(
        div.event.contains("vote term=9"),
        "divergence must point at the mutated event: {div:?}"
    );
}
