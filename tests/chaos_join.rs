//! Elastic-membership chaos tests: mid-run join, partition + heal +
//! rejoin, and master crashes with a join in flight — all bit-exact
//! against the sequential reference.
//!
//! Three fault shapes per engine:
//! - **Late join**: a slave starts with an empty assignment, idles, and
//!   joins the running pool mid-run; the master admits it at the next
//!   barrier and re-scatters load onto it.
//! - **Partition + heal**: a 16-slave run is split; the quorum side (with
//!   the master) evicts the minority and keeps computing; after the heal
//!   the minority learns its eviction from the master's repeated verdict,
//!   rejoins as fresh incarnations, and reabsorbs load.
//! - **Crash during join**: the master dies with a join handshake in
//!   flight; the promoted deputy must admit the joiner under its reign.

use dlb::apps::{Calibration, Lu, MatMul, Sor};
use dlb::core::driver::{try_run, AppSpec, RunConfig, RunReport};
use dlb::sim::{FaultPlan, SimDuration, SimTime};
use std::sync::Arc;

const SLAVES: usize = 16;

/// Node 0 is the master; node `i + 1` is slave `i`.
const MASTER_NODE: usize = 0;

fn slave_node(i: usize) -> usize {
    i + 1
}

/// Fault-mode config with tolerances tightened so evictions, heals, and
/// rejoins all fit inside a short virtual run, and elastic membership on.
fn join_cfg(plan: FaultPlan) -> RunConfig {
    let mut cfg = RunConfig::homogeneous(SLAVES);
    cfg.balancer.enabled = true;
    cfg.fault_plan = Some(plan);
    cfg.fault_tolerance.suspicion = SimDuration::from_millis(1000);
    cfg.fault_tolerance.speculate_after = SimDuration::from_millis(600);
    cfg.fault_tolerance.nudge = SimDuration::from_millis(300);
    cfg.fault_tolerance.slave_heartbeat = SimDuration::from_millis(200);
    cfg.fault_tolerance.rejoin_attempts = 10;
    cfg.fault_tolerance.rejoin_backoff = SimDuration::from_millis(300);
    cfg
}

/// Tighter timers for the partition tests: the eviction, heal, and rejoin
/// must all land inside a short MatMul/LU run. SOR keeps gentler timers
/// (see `sor_cfg`) — its compute chunks outlast a 500ms suspicion window.
fn partition_cfg(plan: FaultPlan) -> RunConfig {
    let mut cfg = join_cfg(plan);
    cfg.fault_tolerance.suspicion = SimDuration::from_millis(500);
    cfg.fault_tolerance.speculate_after = SimDuration::from_millis(400);
    cfg.fault_tolerance.nudge = SimDuration::from_millis(200);
    cfg.fault_tolerance.slave_heartbeat = SimDuration::from_millis(100);
    cfg.fault_tolerance.rejoin_backoff = SimDuration::from_millis(200);
    cfg
}

fn sor_cfg(plan: FaultPlan) -> RunConfig {
    let mut cfg = join_cfg(plan);
    cfg.fault_tolerance.suspicion = SimDuration::from_millis(2000);
    cfg.fault_tolerance.speculate_after = SimDuration::from_millis(1600);
    cfg.fault_tolerance.nudge = SimDuration::from_millis(800);
    cfg.fault_tolerance.rejoin_backoff = SimDuration::from_millis(400);
    cfg
}

fn mm() -> (Arc<MatMul>, dlb::compiler::ParallelPlan) {
    // 32 row-blocks over 16 slaves: two units each before balancing.
    let k = Arc::new(MatMul::new(32, 3, 7, &Calibration::new(0.05)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn mm_long() -> (Arc<MatMul>, dlb::compiler::ParallelPlan) {
    // Enough invocations (~1.2s fault-free) that a partition window can
    // open, evict, heal, and still leave barriers for the re-admissions.
    let k = Arc::new(MatMul::new(32, 12, 7, &Calibration::new(0.05)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn sor() -> (Arc<Sor>, dlb::compiler::ParallelPlan) {
    let k = Arc::new(Sor::new(36, 4, 7, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn lu() -> (Arc<Lu>, dlb::compiler::ParallelPlan) {
    let k = Arc::new(Lu::new(24, 7, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn lu_long() -> (Arc<Lu>, dlb::compiler::ParallelPlan) {
    let k = Arc::new(Lu::new(40, 7, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn assert_joined(report: &RunReport, label: &str, at_least: u64) {
    assert!(
        report.recovery.joins_admitted >= at_least,
        "{label}: expected >= {at_least} admissions: {:?}",
        report.recovery
    );
}

/// A latecomer slave (empty initial assignment) joins mid-run under every
/// engine; the balancer re-scatters load onto it and the result stays
/// bit-exact.
#[test]
fn late_join_every_engine_exact() {
    let (mm_k, mm_plan) = mm();
    let mut cfg = join_cfg(FaultPlan::new(7001));
    cfg.late_joiners = vec![(5, SimTime(150_000))];
    let report = try_run(AppSpec::Independent(mm_k.clone()), &mm_plan, cfg)
        .expect("mm: late join must be survivable");
    assert_eq!(
        MatMul::result_c(&report.result),
        mm_k.sequential(),
        "mm: late-join result must be exact"
    );
    assert_joined(&report, "mm", 1);

    let (sor_k, sor_plan) = sor();
    let mut cfg = join_cfg(FaultPlan::new(7002));
    cfg.late_joiners = vec![(7, SimTime(200_000))];
    let report = try_run(AppSpec::Pipelined(sor_k.clone()), &sor_plan, cfg)
        .expect("sor: late join must be survivable");
    assert_eq!(
        sor_k.result_grid(&report.result),
        sor_k.sequential(),
        "sor: late-join result must be exact"
    );
    assert_joined(&report, "sor", 1);
    assert!(
        report.recovery.join_snapshot_bytes > 0,
        "sor: the joiner must have been shipped a snapshot: {:?}",
        report.recovery
    );

    let (lu_k, lu_plan) = lu();
    let mut cfg = join_cfg(FaultPlan::new(7003));
    cfg.late_joiners = vec![(9, SimTime(150_000))];
    let report = try_run(AppSpec::Shrinking(lu_k.clone()), &lu_plan, cfg)
        .expect("lu: late join must be survivable");
    assert_eq!(
        Lu::result_cols(&report.result),
        lu_k.sequential(),
        "lu: late-join result must be exact"
    );
    assert_joined(&report, "lu", 1);
}

/// The headline scenario: a 16-slave run is partitioned mid-run. The
/// quorum side (master + 13 slaves) evicts the cut-off minority and keeps
/// computing; when the partition heals the minority rejoins as fresh
/// incarnations and reabsorbs load — bit-exact for every engine.
#[test]
fn partition_heal_rejoin_every_engine_exact() {
    // Minority: slaves 12..15 (nodes 13..16). Deputies (slaves 0..2) stay
    // with the master so no election fires inside the minority.
    let minority: Vec<usize> = (12..16).map(slave_node).collect();
    let partition = |seed: u64, from: u64, until: u64| {
        FaultPlan::new(seed).partition(SimTime(from), SimTime(until), vec![minority.clone()])
    };

    let (mm_k, mm_plan) = mm_long();
    let report = try_run(
        AppSpec::Independent(mm_k.clone()),
        &mm_plan,
        partition_cfg(partition(7101, 150_000, 1_200_000)),
    )
    .expect("mm: partition + heal must be survivable");
    assert_eq!(
        MatMul::result_c(&report.result),
        mm_k.sequential(),
        "mm: partition-heal result must be exact"
    );
    assert!(
        report.recovery.slaves_declared_dead >= 4,
        "mm: the quorum side must have evicted the minority: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.rejoins_after_eviction >= 4,
        "mm: the minority must have rejoined after the heal: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.partitions_healed >= 1,
        "mm: a heal must have been recorded: {:?}",
        report.recovery
    );

    let (sor_k, sor_plan) = sor();
    let report = try_run(
        AppSpec::Pipelined(sor_k.clone()),
        &sor_plan,
        sor_cfg(partition(7102, 200_000, 3_000_000)),
    )
    .expect("sor: partition + heal must be survivable");
    assert_eq!(
        sor_k.result_grid(&report.result),
        sor_k.sequential(),
        "sor: partition-heal result must be exact"
    );
    assert!(
        report.recovery.rejoins_after_eviction >= 1,
        "sor: at least one minority slave must have rejoined: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.partitions_healed >= 1,
        "sor: a heal must have been recorded: {:?}",
        report.recovery
    );

    let (lu_k, lu_plan) = lu_long();
    let report = try_run(
        AppSpec::Shrinking(lu_k.clone()),
        &lu_plan,
        partition_cfg(partition(7103, 150_000, 1_200_000)),
    )
    .expect("lu: partition + heal must be survivable");
    assert_eq!(
        Lu::result_cols(&report.result),
        lu_k.sequential(),
        "lu: partition-heal result must be exact"
    );
    assert!(
        report.recovery.rejoins_after_eviction >= 1,
        "lu: at least one minority slave must have rejoined: {:?}",
        report.recovery
    );
}

/// The master dies with a latecomer's join in flight: the promoted deputy
/// must adopt the incarnation table from the replica and admit the joiner
/// under its own reign — for both the recoverable and the checkpointed
/// master paths.
#[test]
fn master_crash_while_join_in_flight() {
    let (mm_k, mm_plan) = mm();
    let mut cfg = join_cfg(FaultPlan::new(7201).crash(MASTER_NODE, SimTime(160_000)));
    cfg.late_joiners = vec![(5, SimTime(150_000))];
    let report = try_run(AppSpec::Independent(mm_k.clone()), &mm_plan, cfg)
        .expect("mm: master crash during a join must be survivable");
    assert_eq!(
        MatMul::result_c(&report.result),
        mm_k.sequential(),
        "mm: crash-during-join result must be exact"
    );
    assert!(
        report.recovery.elections_held >= 1,
        "mm: a deputy must have taken over: {:?}",
        report.recovery
    );
    assert_joined(&report, "mm", 1);

    let (sor_k, sor_plan) = sor();
    let mut cfg = join_cfg(FaultPlan::new(7202).crash(MASTER_NODE, SimTime(210_000)));
    cfg.late_joiners = vec![(7, SimTime(200_000))];
    let report = try_run(AppSpec::Pipelined(sor_k.clone()), &sor_plan, cfg)
        .expect("sor: master crash during a join must be survivable");
    assert_eq!(
        sor_k.result_grid(&report.result),
        sor_k.sequential(),
        "sor: crash-during-join result must be exact"
    );
    assert!(
        report.recovery.elections_held >= 1,
        "sor: a deputy must have taken over: {:?}",
        report.recovery
    );
    assert_joined(&report, "sor", 1);
}

/// A slave crash composed with a partition heal: one quorum-side slave
/// dies for good while the minority is cut off; the survivors absorb both
/// evictions, the minority still rejoins, and the result stays exact.
#[test]
fn crash_and_partition_compose() {
    let minority: Vec<usize> = (12..16).map(slave_node).collect();
    let (k, plan) = mm_long();
    let fault = FaultPlan::new(7301)
        .partition(SimTime(150_000), SimTime(1_200_000), vec![minority])
        .crash(slave_node(4), SimTime(400_000));
    let report = try_run(AppSpec::Independent(k.clone()), &plan, partition_cfg(fault))
        .expect("crash inside a partition window must be survivable");
    assert_eq!(
        MatMul::result_c(&report.result),
        k.sequential(),
        "crash+partition result must be exact"
    );
    assert!(
        report.recovery.slaves_declared_dead >= 5,
        "both the minority and the crashed slave must be evicted: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.rejoins_after_eviction >= 4,
        "the minority must still rejoin: {:?}",
        report.recovery
    );
}

/// Elastic membership is part of the deterministic trace: the same fault
/// plan reproduces the identical trace hash and recovery counters; a
/// different heal time diverges. (Partition drops are deterministic — they
/// never consult the fault RNG — so the *window*, not the seed, is what
/// shapes the trace.)
#[test]
fn join_and_heal_are_deterministic() {
    let (k, plan) = mm_long();
    let minority: Vec<usize> = (12..16).map(slave_node).collect();
    let run_one = |until: u64| {
        let fault = FaultPlan::new(7401).partition(
            SimTime(150_000),
            SimTime(until),
            vec![minority.clone()],
        );
        let mut cfg = partition_cfg(fault);
        cfg.record_trace = true;
        try_run(AppSpec::Independent(k.clone()), &plan, cfg)
            .expect("partition + heal must be survivable")
    };
    let a = run_one(1_200_000);
    let b = run_one(1_200_000);
    assert_eq!(a.sim.trace_hash, b.sim.trace_hash, "same plan ⇒ same trace");
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(MatMul::result_c(&a.result), k.sequential());
    let c = run_one(1_400_000);
    assert_ne!(
        a.sim.trace_hash, c.sim.trace_hash,
        "different heal time ⇒ different trace"
    );
}
