//! Property tests over the whole runtime: random problem sizes, cluster
//! shapes, load models, and balancer policies — parallel results must
//! always be bitwise identical to the sequential references, and the
//! balancer's bookkeeping must stay conserved.

use dlb::apps::{Calibration, Lu, MatMul, Sor};
use dlb::core::driver::{run, AppSpec, RunConfig};
use dlb::core::{BalancerConfig, InteractionMode};
use dlb::sim::{LoadModel, NodeConfig, SimDuration, SimTime};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_load() -> impl Strategy<Value = LoadModel> {
    prop_oneof![
        3 => Just(LoadModel::Dedicated),
        2 => (1u32..3).prop_map(LoadModel::Constant),
        2 => (2u64..10, 1u32..3).prop_flat_map(|(period, tasks)| {
            (1..period).prop_map(move |duty| LoadModel::Oscillating {
                period: SimDuration::from_secs(period),
                duty: SimDuration::from_secs(duty),
                tasks,
            })
        }),
        1 => proptest::collection::vec((0u64..20_000_000, 0u32..3), 1..4).prop_map(|mut v| {
            v.sort_by_key(|&(t, _)| t);
            LoadModel::Trace(v.into_iter().map(|(t, k)| (SimTime(t), k)).collect())
        }),
    ]
}

fn arb_cluster() -> impl Strategy<Value = Vec<NodeConfig>> {
    proptest::collection::vec(
        (arb_load(), 0.5f64..2.0).prop_map(|(load, speed)| NodeConfig {
            speed,
            quantum: SimDuration::from_millis(100),
            load,
        }),
        2..5,
    )
}

fn arb_balancer() -> impl Strategy<Value = BalancerConfig> {
    (any::<bool>(), any::<bool>(), 0.02f64..0.3).prop_map(|(sync, prof, threshold)| {
        BalancerConfig {
            enabled: true,
            mode: if sync {
                InteractionMode::Synchronous
            } else {
                InteractionMode::Pipelined
            },
            threshold,
            profitability: prof,
            ..Default::default()
        }
    })
}

fn cfg_for(cluster: Vec<NodeConfig>, bal: BalancerConfig) -> RunConfig {
    let mut cfg = RunConfig::homogeneous(cluster.len());
    cfg.slave_nodes = cluster;
    cfg.balancer = bal;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full cluster simulation
        ..ProptestConfig::default()
    })]

    #[test]
    fn mm_always_exact(
        n in 8usize..40,
        reps in 1u64..4,
        seed in 0u64..1000,
        cluster in arb_cluster(),
        bal in arb_balancer(),
    ) {
        prop_assume!(n >= cluster.len());
        let mm = Arc::new(MatMul::new(n, reps, seed, &Calibration::new(0.002)));
        let plan = dlb::compiler::compile(&mm.program()).unwrap();
        let report = run(AppSpec::Independent(mm.clone()), &plan, cfg_for(cluster, bal));
        prop_assert_eq!(MatMul::result_c(&report.result), mm.sequential());
    }

    #[test]
    fn sor_always_exact(
        n in 6usize..30,
        sweeps in 1u64..6,
        seed in 0u64..1000,
        cluster in arb_cluster(),
        bal in arb_balancer(),
    ) {
        prop_assume!(n - 2 >= cluster.len());
        let sor = Arc::new(Sor::new(n, sweeps, seed, &Calibration::new(0.002)));
        let plan = dlb::compiler::compile(&sor.program()).unwrap();
        let report = run(AppSpec::Pipelined(sor.clone()), &plan, cfg_for(cluster, bal));
        prop_assert_eq!(sor.result_grid(&report.result), sor.sequential());
    }

    #[test]
    fn lu_always_exact(
        n in 8usize..36,
        seed in 0u64..1000,
        cluster in arb_cluster(),
        bal in arb_balancer(),
    ) {
        prop_assume!(n >= cluster.len());
        let lu = Arc::new(Lu::new(n, seed, &Calibration::new(0.002)));
        let plan = dlb::compiler::compile(&lu.program()).unwrap();
        let report = run(AppSpec::Shrinking(lu.clone()), &plan, cfg_for(cluster, bal));
        let cols = Lu::result_cols(&report.result);
        prop_assert_eq!(&cols, &lu.sequential());
        prop_assert!(lu.residual(&cols) < 1e-8);
    }

    /// Messages are conserved: every sent byte is received, and the
    /// efficiency metric stays in (0, 1] on dedicated clusters.
    #[test]
    fn accounting_conserved(
        n in 12usize..32,
        reps in 1u64..3,
        slaves in 2usize..5,
    ) {
        let mm = Arc::new(MatMul::new(n, reps, 1, &Calibration::new(0.01)));
        let plan = dlb::compiler::compile(&mm.program()).unwrap();
        let report = run(
            AppSpec::Independent(mm.clone()),
            &plan,
            RunConfig::homogeneous(slaves),
        );
        let sent: u64 = report.sim.actors.iter().map(|a| a.msgs_sent).sum();
        let received: u64 = report.sim.actors.iter().map(|a| a.msgs_received).sum();
        prop_assert_eq!(sent, received);
        let eff = report.efficiency(mm.sequential_time());
        prop_assert!(eff > 0.0 && eff <= 1.0 + 1e-9, "efficiency {}", eff);
    }
}
