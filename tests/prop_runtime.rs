//! Randomized tests over the whole runtime: random problem sizes, cluster
//! shapes, load models, and balancer policies — parallel results must
//! always be bitwise identical to the sequential references, and the
//! balancer's bookkeeping must stay conserved. Driven by deterministic
//! PCG-seeded loops (each case is a full cluster simulation, so counts are
//! modest); every failure reproduces exactly.

use dlb::apps::{Calibration, Lu, MatMul, Sor};
use dlb::core::driver::{run, AppSpec, RunConfig};
use dlb::core::{BalancerConfig, InteractionMode};
use dlb::sim::{LoadModel, NodeConfig, Pcg32, SimDuration, SimTime};
use std::sync::Arc;

const CASES: u64 = 12;

fn random_load(rng: &mut Pcg32) -> LoadModel {
    match rng.gen_range(0, 8) {
        0..=2 => LoadModel::Dedicated,
        3..=4 => LoadModel::Constant(1 + rng.gen_range(0, 2) as u32),
        5..=6 => {
            let period = 2 + rng.gen_range(0, 8);
            let duty = 1 + rng.gen_range(0, period - 1);
            LoadModel::Oscillating {
                period: SimDuration::from_secs(period),
                duty: SimDuration::from_secs(duty),
                tasks: 1 + rng.gen_range(0, 2) as u32,
            }
        }
        _ => {
            let mut v: Vec<(u64, u32)> = (0..1 + rng.gen_range(0, 3))
                .map(|_| (rng.gen_range(0, 20_000_000), rng.gen_range(0, 3) as u32))
                .collect();
            v.sort_by_key(|&(t, _)| t);
            LoadModel::Trace(v.into_iter().map(|(t, k)| (SimTime(t), k)).collect())
        }
    }
}

fn random_cluster(rng: &mut Pcg32) -> Vec<NodeConfig> {
    let n = 2 + rng.gen_range(0, 3) as usize;
    (0..n)
        .map(|_| NodeConfig {
            speed: 0.5 + rng.next_f64() * 1.5,
            quantum: SimDuration::from_millis(100),
            load: random_load(rng),
        })
        .collect()
}

fn random_balancer(rng: &mut Pcg32) -> BalancerConfig {
    BalancerConfig {
        enabled: true,
        mode: if rng.chance(0.5) {
            InteractionMode::Synchronous
        } else {
            InteractionMode::Pipelined
        },
        threshold: 0.02 + rng.next_f64() * 0.28,
        profitability: rng.chance(0.5),
        ..Default::default()
    }
}

fn cfg_for(cluster: Vec<NodeConfig>, bal: BalancerConfig) -> RunConfig {
    let mut cfg = RunConfig::homogeneous(cluster.len());
    cfg.slave_nodes = cluster;
    cfg.balancer = bal;
    cfg
}

#[test]
fn mm_always_exact() {
    let mut rng = Pcg32::new(0x1111);
    for case in 0..CASES {
        let cluster = random_cluster(&mut rng);
        let bal = random_balancer(&mut rng);
        let n = (8 + rng.gen_range(0, 32) as usize).max(cluster.len());
        let reps = 1 + rng.gen_range(0, 3);
        let seed = rng.gen_range(0, 1000);
        let mm = Arc::new(MatMul::new(n, reps, seed, &Calibration::new(0.002)));
        let plan = dlb::compiler::compile(&mm.program()).unwrap();
        let report = run(
            AppSpec::Independent(mm.clone()),
            &plan,
            cfg_for(cluster, bal),
        );
        assert_eq!(
            MatMul::result_c(&report.result),
            mm.sequential(),
            "case {case}"
        );
    }
}

#[test]
fn sor_always_exact() {
    let mut rng = Pcg32::new(0x2222);
    for case in 0..CASES {
        let cluster = random_cluster(&mut rng);
        let bal = random_balancer(&mut rng);
        let n = (6 + rng.gen_range(0, 24) as usize).max(cluster.len() + 2);
        let sweeps = 1 + rng.gen_range(0, 5);
        let seed = rng.gen_range(0, 1000);
        let sor = Arc::new(Sor::new(n, sweeps, seed, &Calibration::new(0.002)));
        let plan = dlb::compiler::compile(&sor.program()).unwrap();
        let report = run(
            AppSpec::Pipelined(sor.clone()),
            &plan,
            cfg_for(cluster, bal),
        );
        assert_eq!(
            sor.result_grid(&report.result),
            sor.sequential(),
            "case {case}"
        );
    }
}

#[test]
fn lu_always_exact() {
    let mut rng = Pcg32::new(0x3333);
    for case in 0..CASES {
        let cluster = random_cluster(&mut rng);
        let bal = random_balancer(&mut rng);
        let n = (8 + rng.gen_range(0, 28) as usize).max(cluster.len());
        let seed = rng.gen_range(0, 1000);
        let lu = Arc::new(Lu::new(n, seed, &Calibration::new(0.002)));
        let plan = dlb::compiler::compile(&lu.program()).unwrap();
        let report = run(AppSpec::Shrinking(lu.clone()), &plan, cfg_for(cluster, bal));
        let cols = Lu::result_cols(&report.result);
        assert_eq!(&cols, &lu.sequential(), "case {case}");
        assert!(lu.residual(&cols) < 1e-8, "case {case}");
    }
}

/// Messages are conserved: every sent byte is received, and the
/// efficiency metric stays in (0, 1] on dedicated clusters. (Kept
/// fault-free: conservation is only promised without injected faults.)
#[test]
fn accounting_conserved() {
    let mut rng = Pcg32::new(0x4444);
    for case in 0..CASES {
        let n = 12 + rng.gen_range(0, 20) as usize;
        let reps = 1 + rng.gen_range(0, 2);
        let slaves = 2 + rng.gen_range(0, 3) as usize;
        let mm = Arc::new(MatMul::new(n, reps, 1, &Calibration::new(0.01)));
        let plan = dlb::compiler::compile(&mm.program()).unwrap();
        let report = run(
            AppSpec::Independent(mm.clone()),
            &plan,
            RunConfig::homogeneous(slaves),
        );
        let sent: u64 = report.sim.actors.iter().map(|a| a.msgs_sent).sum();
        let received: u64 = report.sim.actors.iter().map(|a| a.msgs_received).sum();
        assert_eq!(sent, received, "case {case}");
        let eff = report.efficiency(mm.sequential_time());
        assert!(
            eff > 0.0 && eff <= 1.0 + 1e-9,
            "case {case}: efficiency {eff}"
        );
    }
}
