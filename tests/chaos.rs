//! Chaos tests: deterministic fault injection against the full runtime.
//!
//! The fault plan drops/duplicates/delays messages and crashes nodes at
//! scheduled virtual times; the run must never panic or hang. The
//! independent engine must *recover* (bit-identical result with a degraded
//! node count); the pipelined and shrinking engines must detect trouble
//! and abort with a typed error. Everything is seeded, so each case
//! reproduces exactly.

use dlb::apps::{Calibration, Lu, MatMul, Sor};
use dlb::core::driver::{try_run, AppSpec, RunConfig};
use dlb::core::ProtocolError;
use dlb::sim::{FaultPlan, SimTime};
use std::sync::Arc;

const SLAVES: usize = 4;

/// Crash times are virtual microseconds; node `i + 1` is slave `i`
/// (node 0 is the master).
fn slave_node(i: usize) -> usize {
    i + 1
}

fn chaos_cfg(plan: FaultPlan) -> RunConfig {
    let mut cfg = RunConfig::homogeneous(SLAVES);
    cfg.fault_plan = Some(plan);
    cfg
}

fn mm() -> (Arc<MatMul>, dlb::compiler::ParallelPlan) {
    // ~23 ms per unit: long enough that scheduled crashes land mid-run,
    // short enough that one unit is far below the suspicion timeout.
    let k = Arc::new(MatMul::new(24, 3, 7, &Calibration::new(0.05)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn sor() -> (Arc<Sor>, dlb::compiler::ParallelPlan) {
    let k = Arc::new(Sor::new(18, 4, 7, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn lu() -> (Arc<Lu>, dlb::compiler::ParallelPlan) {
    let k = Arc::new(Lu::new(20, 7, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

/// A fault plan with no faults behaves exactly like a plain run: complete,
/// correct, and with every fault and recovery counter at zero.
#[test]
fn quiet_fault_plan_completes_normally() {
    let (k, plan) = mm();
    let report = try_run(
        AppSpec::Independent(k.clone()),
        &plan,
        chaos_cfg(FaultPlan::new(1)),
    )
    .expect("quiet plan must complete");
    assert_eq!(MatMul::result_c(&report.result), k.sequential());
    assert!(
        !report.recovery.any(),
        "no recovery without faults: {:?}",
        report.recovery
    );
    assert!(
        !report.sim.fault.any(),
        "no faults injected: {:?}",
        report.sim.fault
    );
}

/// The headline recovery scenario: 5 % message drop plus one mid-run node
/// crash. The independent engine re-scatters the dead slave's units and
/// finishes bit-for-bit identical to the sequential reference.
#[test]
fn independent_recovers_from_drops_and_crash() {
    let (k, plan) = mm();
    let fault = FaultPlan::new(42)
        .drop_all(0.05)
        .crash(slave_node(2), SimTime(200_000));
    let report = try_run(AppSpec::Independent(k.clone()), &plan, chaos_cfg(fault))
        .expect("independent engine must recover");
    assert_eq!(
        MatMul::result_c(&report.result),
        k.sequential(),
        "recovered result must be bit-identical"
    );
    assert_eq!(report.recovery.slaves_declared_dead, 1);
    assert!(
        report.recovery.units_restored > 0 || report.recovery.units_recomputed > 0,
        "the dead slave's units must have been restored or recomputed: {:?}",
        report.recovery
    );
    assert!(report.sim.fault.msgs_dropped > 0);
}

/// Sweep drop probability × crash time for the independent engine: every
/// combination must complete with a bit-identical result, and any crash
/// that fired must be recorded as a recovery.
#[test]
fn independent_chaos_sweep() {
    let (k, plan) = mm();
    for (pi, &p) in [0.0f64, 0.02, 0.05].iter().enumerate() {
        for (ci, crash_at) in [None, Some(150_000u64), Some(450_000u64)]
            .into_iter()
            .enumerate()
        {
            let seed = 100 + (pi * 10 + ci) as u64;
            let mut fault = FaultPlan::new(seed).drop_all(p).dup_all(p / 2.0);
            if let Some(t) = crash_at {
                fault = fault.crash(slave_node(ci % SLAVES), SimTime(t));
            }
            let label = format!("p={p} crash={crash_at:?}");
            let report = try_run(AppSpec::Independent(k.clone()), &plan, chaos_cfg(fault))
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(
                MatMul::result_c(&report.result),
                k.sequential(),
                "{label}: result must be exact"
            );
            if !report.sim.fault.crashed_nodes.is_empty() {
                assert!(
                    report.recovery.slaves_declared_dead > 0,
                    "{label}: crash fired but no recovery recorded"
                );
            }
        }
    }
}

/// The same sweep against the pipelined and shrinking engines: carried
/// dependences make recovery impossible, so each combination must either
/// complete exactly (faults missed anything critical) or surface a typed
/// error — never a panic, never a hang.
#[test]
fn pipelined_and_shrinking_chaos_sweep() {
    let (sor_k, sor_plan) = sor();
    let (lu_k, lu_plan) = lu();
    for (pi, &p) in [0.0f64, 0.02, 0.05].iter().enumerate() {
        for (ci, crash_at) in [None, Some(300_000u64)].into_iter().enumerate() {
            let seed = 500 + (pi * 10 + ci) as u64;
            let build = |stream: u64| {
                let mut f = FaultPlan::new(seed + stream).drop_all(p);
                if let Some(t) = crash_at {
                    f = f.crash(slave_node(1), SimTime(t));
                }
                f
            };
            let label = format!("p={p} crash={crash_at:?}");

            match try_run(
                AppSpec::Pipelined(sor_k.clone()),
                &sor_plan,
                chaos_cfg(build(0)),
            ) {
                Ok(report) => assert_eq!(
                    sor_k.result_grid(&report.result),
                    sor_k.sequential(),
                    "sor {label}: completed run must be exact"
                ),
                Err(e) => assert_typed(&e.error, &format!("sor {label}")),
            }

            match try_run(
                AppSpec::Shrinking(lu_k.clone()),
                &lu_plan,
                chaos_cfg(build(1)),
            ) {
                Ok(report) => {
                    let cols = Lu::result_cols(&report.result);
                    assert_eq!(
                        &cols,
                        &lu_k.sequential(),
                        "lu {label}: completed run must be exact"
                    );
                }
                Err(e) => assert_typed(&e.error, &format!("lu {label}")),
            }
        }
    }
}

/// A mid-run crash under the pipelined engine must produce a typed error
/// (the sweep above allows Ok for combinations where the fault misses; this
/// one is tuned so the crash always lands mid-computation).
#[test]
fn pipelined_crash_aborts_with_typed_error() {
    let (k, plan) = sor();
    let fault = FaultPlan::new(9).crash(slave_node(1), SimTime(300_000));
    let err = try_run(AppSpec::Pipelined(k), &plan, chaos_cfg(fault))
        .expect_err("crash mid-sweep must abort the pipelined run");
    assert_typed(&err.error, "pipelined crash");
    assert!(
        matches!(
            err.error,
            ProtocolError::SlaveDead { .. }
                | ProtocolError::SlaveFailed { .. }
                | ProtocolError::Timeout { .. }
        ),
        "expected a liveness error, got {}",
        err.error
    );
}

/// Same for the shrinking engine.
#[test]
fn shrinking_crash_aborts_with_typed_error() {
    let (k, plan) = lu();
    let fault = FaultPlan::new(9).crash(slave_node(2), SimTime(200_000));
    let err = try_run(AppSpec::Shrinking(k), &plan, chaos_cfg(fault))
        .expect_err("crash mid-elimination must abort the shrinking run");
    assert_typed(&err.error, "shrinking crash");
}

/// Losing every slave is reported as such, not as a hang.
#[test]
fn all_slaves_dead_is_reported() {
    let (k, plan) = mm();
    let mut fault = FaultPlan::new(3);
    for i in 0..SLAVES {
        fault = fault.crash(slave_node(i), SimTime(100_000 + i as u64 * 10_000));
    }
    let err = try_run(AppSpec::Independent(k), &plan, chaos_cfg(fault))
        .expect_err("no survivors: the run cannot complete");
    assert!(
        matches!(err.error, ProtocolError::AllSlavesDead),
        "expected AllSlavesDead, got {}",
        err.error
    );
}

/// Fault injection is part of the deterministic trace: the same seed and
/// plan reproduce the identical execution (trace hash, fault counters,
/// result); a different fault seed diverges.
#[test]
fn determinism_holds_under_faults() {
    let (k, plan) = mm();
    let build = |seed: u64| {
        FaultPlan::new(seed)
            .drop_all(0.05)
            .dup_all(0.02)
            .jitter_all(0.1, dlb::sim::SimDuration::from_millis(20))
            .crash(slave_node(3), SimTime(250_000))
    };
    let run_one = |seed: u64| {
        try_run(
            AppSpec::Independent(k.clone()),
            &plan,
            chaos_cfg(build(seed)),
        )
        .expect("independent engine must recover")
    };
    let a = run_one(77);
    let b = run_one(77);
    assert_eq!(a.sim.trace_hash, b.sim.trace_hash, "same seed ⇒ same trace");
    assert_eq!(a.sim.fault.msgs_dropped, b.sim.fault.msgs_dropped);
    assert_eq!(a.sim.fault.msgs_duplicated, b.sim.fault.msgs_duplicated);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(MatMul::result_c(&a.result), MatMul::result_c(&b.result));
    let c = run_one(78);
    assert_ne!(
        a.sim.trace_hash, c.sim.trace_hash,
        "different fault seed ⇒ different trace"
    );
}

/// Every error a chaos run can legitimately produce.
fn assert_typed(e: &ProtocolError, label: &str) {
    match e {
        ProtocolError::UnexpectedMessage { .. }
        | ProtocolError::Timeout { .. }
        | ProtocolError::MissingPivot { .. }
        | ProtocolError::NonNeighborTransfer { .. }
        | ProtocolError::SlaveDead { .. }
        | ProtocolError::AllSlavesDead
        | ProtocolError::SlaveFailed { .. }
        | ProtocolError::Inconsistent { .. } => {}
        ProtocolError::Aborted | ProtocolError::Evicted { .. } => {
            panic!("{label}: Aborted/Evicted are internal control errors, not run outcomes: {e}")
        }
    }
}
