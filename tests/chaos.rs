//! Chaos tests: deterministic fault injection against the full runtime.
//!
//! The fault plan drops/duplicates/delays messages and crashes nodes at
//! scheduled virtual times; the run must never panic or hang. Since the
//! transfer-window protocol landed, *every* engine completes with a
//! bit-identical result under faults — the independent engine re-scatters
//! a dead slave's units, the pipelined and shrinking engines roll the
//! survivors back to the latest complete checkpoint — and the dynamic
//! balancer stays live throughout. Everything is seeded, so each case
//! reproduces exactly.

use dlb::apps::{Calibration, Lu, MatMul, Sor};
use dlb::core::driver::{try_run, AppSpec, RunConfig};
use dlb::core::ProtocolError;
use dlb::sim::{FaultPlan, SimDuration, SimTime};
use std::sync::Arc;

const SLAVES: usize = 4;

/// Crash times are virtual microseconds; node `i + 1` is slave `i`
/// (node 0 is the master).
fn slave_node(i: usize) -> usize {
    i + 1
}

fn chaos_cfg(plan: FaultPlan, balancer_on: bool) -> RunConfig {
    let mut cfg = RunConfig::homogeneous(SLAVES);
    cfg.balancer.enabled = balancer_on;
    cfg.fault_plan = Some(plan);
    cfg
}

fn mm() -> (Arc<MatMul>, dlb::compiler::ParallelPlan) {
    // ~23 ms per unit: long enough that scheduled crashes land mid-run,
    // short enough that one unit is far below the suspicion timeout.
    let k = Arc::new(MatMul::new(24, 3, 7, &Calibration::new(0.05)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn sor() -> (Arc<Sor>, dlb::compiler::ParallelPlan) {
    let k = Arc::new(Sor::new(18, 4, 7, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn lu() -> (Arc<Lu>, dlb::compiler::ParallelPlan) {
    let k = Arc::new(Lu::new(20, 7, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

/// One fault flavor of the chaos matrix.
#[derive(Clone, Copy, Debug)]
enum Fault {
    Crash,
    Drop,
    Dup,
    Jitter,
}

const FAULTS: [Fault; 4] = [Fault::Crash, Fault::Drop, Fault::Dup, Fault::Jitter];

impl Fault {
    fn plan(self, seed: u64, crash_at: u64) -> FaultPlan {
        match self {
            Fault::Crash => FaultPlan::new(seed).crash(slave_node(1), SimTime(crash_at)),
            Fault::Drop => FaultPlan::new(seed).drop_all(0.05),
            Fault::Dup => FaultPlan::new(seed).dup_all(0.05),
            Fault::Jitter => FaultPlan::new(seed).jitter_all(0.2, SimDuration::from_millis(20)),
        }
    }
}

fn check_independent(report: &dlb::core::driver::RunReport, k: &MatMul, label: &str) {
    assert_eq!(
        MatMul::result_c(&report.result),
        k.sequential(),
        "{label}: result must be exact"
    );
}

/// A fault plan with no faults behaves exactly like a plain run: complete,
/// correct, and with every fault and recovery counter at zero.
#[test]
fn quiet_fault_plan_completes_normally() {
    let (k, plan) = mm();
    let report = try_run(
        AppSpec::Independent(k.clone()),
        &plan,
        chaos_cfg(FaultPlan::new(1), true),
    )
    .expect("quiet plan must complete");
    assert_eq!(MatMul::result_c(&report.result), k.sequential());
    assert!(
        !report.recovery.any(),
        "no recovery without faults: {:?}",
        report.recovery
    );
    assert!(
        !report.sim.fault.any(),
        "no faults injected: {:?}",
        report.sim.fault
    );
}

/// The full chaos matrix: {engine} x {balancer on/off} x {crash, drop,
/// dup, jitter}. Every combination must complete with a result
/// bit-identical to the sequential reference — crashes are recovered
/// (re-scatter or rollback), drops are re-sent, duplicates are fenced,
/// jitter only reorders.
#[test]
fn chaos_matrix_every_engine_completes_exactly() {
    let (mm_k, mm_plan) = mm();
    let (sor_k, sor_plan) = sor();
    let (lu_k, lu_plan) = lu();
    for (bi, balancer_on) in [true, false].into_iter().enumerate() {
        for (fi, fault) in FAULTS.into_iter().enumerate() {
            let seed = 1000 + (bi * 10 + fi) as u64;
            let label = |eng: &str| format!("{eng} balancer={balancer_on} fault={fault:?}");

            let report = try_run(
                AppSpec::Independent(mm_k.clone()),
                &mm_plan,
                chaos_cfg(fault.plan(seed, 200_000), balancer_on),
            )
            .unwrap_or_else(|e| panic!("{}: {}", label("mm"), e.error));
            check_independent(&report, &mm_k, &label("mm"));
            if matches!(fault, Fault::Crash) {
                assert_eq!(
                    report.recovery.slaves_declared_dead,
                    1,
                    "{}: crash must be detected",
                    label("mm")
                );
            }

            let report = try_run(
                AppSpec::Pipelined(sor_k.clone()),
                &sor_plan,
                chaos_cfg(fault.plan(seed + 100, 300_000), balancer_on),
            )
            .unwrap_or_else(|e| panic!("{}: {}", label("sor"), e.error));
            assert_eq!(
                sor_k.result_grid(&report.result),
                sor_k.sequential(),
                "{}: result must be exact",
                label("sor")
            );
            if matches!(fault, Fault::Crash) {
                assert!(
                    report.recovery.rollbacks > 0,
                    "{}: crash must roll survivors back: {:?}",
                    label("sor"),
                    report.recovery
                );
            }

            let report = try_run(
                AppSpec::Shrinking(lu_k.clone()),
                &lu_plan,
                chaos_cfg(fault.plan(seed + 200, 200_000), balancer_on),
            )
            .unwrap_or_else(|e| panic!("{}: {}", label("lu"), e.error));
            assert_eq!(
                Lu::result_cols(&report.result),
                lu_k.sequential(),
                "{}: result must be exact",
                label("lu")
            );
            if matches!(fault, Fault::Crash) {
                assert!(
                    report.recovery.rollbacks > 0,
                    "{}: crash must roll survivors back: {:?}",
                    label("lu"),
                    report.recovery
                );
            }
        }
    }
}

/// The headline recovery scenario, balancer live: 5 % message drop plus
/// one mid-run node crash. The independent engine re-scatters the dead
/// slave's units and finishes bit-for-bit identical to the sequential
/// reference.
#[test]
fn independent_recovers_from_drops_and_crash() {
    let (k, plan) = mm();
    let fault = FaultPlan::new(42)
        .drop_all(0.05)
        .crash(slave_node(2), SimTime(200_000));
    let report = try_run(
        AppSpec::Independent(k.clone()),
        &plan,
        chaos_cfg(fault, true),
    )
    .expect("independent engine must recover");
    check_independent(&report, &k, "drops+crash");
    assert_eq!(report.recovery.slaves_declared_dead, 1);
    assert!(
        report.recovery.units_restored > 0
            || report.recovery.units_recomputed > 0
            || report.recovery.units_reowned > 0
            || report.recovery.speculations_committed > 0,
        "the dead slave's units must have been restored, re-owned, recomputed, \
         or speculatively re-executed: {:?}",
        report.recovery
    );
    assert!(report.sim.fault.msgs_dropped > 0);
}

/// A crashed slave under the independent engine is raced: before suspicion
/// expires, an idle survivor recomputes the suspect's units from the master's
/// ownership map and the master commits the speculation on eviction.
#[test]
fn independent_crash_speculates_on_idle_survivor() {
    let (k, plan) = mm();
    let fault = FaultPlan::new(5).crash(slave_node(1), SimTime(200_000));
    let report = try_run(
        AppSpec::Independent(k.clone()),
        &plan,
        chaos_cfg(fault, true),
    )
    .expect("independent engine must recover");
    check_independent(&report, &k, "crash+speculation");
    assert_eq!(report.recovery.slaves_declared_dead, 1);
    assert!(
        report.recovery.speculations_launched > 0,
        "the suspect's units must be raced on an idle survivor: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.speculations_computed > 0,
        "the executor must have recomputed the suspect's units: {:?}",
        report.recovery
    );
}

/// A mid-sweep crash under the pipelined engine rolls the survivors back
/// to the latest complete checkpoint and the run completes exactly.
#[test]
fn pipelined_crash_resumes_from_checkpoint() {
    let (k, plan) = sor();
    let fault = FaultPlan::new(9).crash(slave_node(1), SimTime(300_000));
    let report = try_run(AppSpec::Pipelined(k.clone()), &plan, chaos_cfg(fault, true))
        .expect("pipelined engine must resume from checkpoint");
    assert_eq!(
        k.result_grid(&report.result),
        k.sequential(),
        "resumed result must be exact"
    );
    assert_eq!(report.recovery.slaves_declared_dead, 1);
    assert!(report.recovery.rollbacks > 0, "{:?}", report.recovery);
    assert!(
        report.recovery.checkpoints_banked > 0,
        "{:?}",
        report.recovery
    );
    assert!(
        report.recovery.rollbacks_applied > 0,
        "survivors must have applied the rollback: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.speculations_launched > 0,
        "the silent suspect's next sweep must be raced on an idle survivor: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.speculations_computed > 0,
        "the executor must have advanced the banked snapshot: {:?}",
        report.recovery
    );
}

/// Same for the shrinking engine: a crash mid-elimination resumes on the
/// survivors from the latest banked snapshot.
#[test]
fn shrinking_crash_resumes_from_checkpoint() {
    let (k, plan) = lu();
    let fault = FaultPlan::new(9).crash(slave_node(2), SimTime(200_000));
    let report = try_run(AppSpec::Shrinking(k.clone()), &plan, chaos_cfg(fault, true))
        .expect("shrinking engine must resume from checkpoint");
    assert_eq!(
        Lu::result_cols(&report.result),
        k.sequential(),
        "resumed result must be exact"
    );
    assert_eq!(report.recovery.slaves_declared_dead, 1);
    assert!(report.recovery.rollbacks > 0, "{:?}", report.recovery);
    assert!(
        report.recovery.checkpoints_banked > 0,
        "{:?}",
        report.recovery
    );
    assert!(
        report.recovery.speculations_launched > 0,
        "the silent suspect's next step must be raced on an idle survivor: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.speculations_computed > 0,
        "the executor must have advanced the banked snapshot: {:?}",
        report.recovery
    );
}

/// Losing every slave is reported as such, not as a hang — even with
/// checkpoints banked there is nobody left to resume on.
#[test]
fn all_slaves_dead_is_reported() {
    let (k, plan) = mm();
    let mut fault = FaultPlan::new(3);
    for i in 0..SLAVES {
        fault = fault.crash(slave_node(i), SimTime(100_000 + i as u64 * 10_000));
    }
    let err = try_run(AppSpec::Independent(k), &plan, chaos_cfg(fault, true))
        .expect_err("no survivors: the run cannot complete");
    assert!(
        matches!(err.error, ProtocolError::AllSlavesDead),
        "expected AllSlavesDead, got {}",
        err.error
    );
}

/// Fault injection is part of the deterministic trace: for every engine,
/// the same seed and plan reproduce the identical execution (trace hash,
/// fault counters, result); a different fault seed diverges.
#[test]
fn determinism_holds_under_faults() {
    let (k, plan) = mm();
    let build = |seed: u64| {
        FaultPlan::new(seed)
            .drop_all(0.05)
            .dup_all(0.02)
            .jitter_all(0.1, SimDuration::from_millis(20))
            .crash(slave_node(3), SimTime(250_000))
    };
    let run_one = |seed: u64| {
        try_run(
            AppSpec::Independent(k.clone()),
            &plan,
            chaos_cfg(build(seed), true),
        )
        .expect("independent engine must recover")
    };
    let a = run_one(77);
    let b = run_one(77);
    assert_eq!(a.sim.trace_hash, b.sim.trace_hash, "same seed ⇒ same trace");
    assert_eq!(a.sim.fault.msgs_dropped, b.sim.fault.msgs_dropped);
    assert_eq!(a.sim.fault.msgs_duplicated, b.sim.fault.msgs_duplicated);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(MatMul::result_c(&a.result), MatMul::result_c(&b.result));
    let c = run_one(78);
    assert_ne!(
        a.sim.trace_hash, c.sim.trace_hash,
        "different fault seed ⇒ different trace"
    );
}

/// Rollback recovery is itself deterministic: two pipelined runs with the
/// same crash plan produce the same trace, the same rollback count, and
/// the same (exact) result.
#[test]
fn pipelined_rollback_is_deterministic() {
    let (k, plan) = sor();
    let run_one = || {
        let fault = FaultPlan::new(31)
            .drop_all(0.02)
            .crash(slave_node(1), SimTime(300_000));
        try_run(AppSpec::Pipelined(k.clone()), &plan, chaos_cfg(fault, true))
            .expect("pipelined engine must resume")
    };
    let a = run_one();
    let b = run_one();
    assert_eq!(a.sim.trace_hash, b.sim.trace_hash, "same seed ⇒ same trace");
    assert_eq!(a.recovery.rollbacks, b.recovery.rollbacks);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(k.result_grid(&a.result), k.sequential());
}

/// Edge cases of the transfer-window state machine driven directly (the
/// runtime exercises these same paths end-to-end above).
mod transfer_window {
    use dlb::core::protocol::{AckTracker, SenderWindow, TransferWindow};

    #[test]
    fn duplicate_delivery_is_accepted_once() {
        let mut w: TransferWindow<u32> = TransferWindow::new();
        assert!(w.accept(1), "first delivery applies");
        assert!(!w.accept(1), "duplicate is acked but not re-applied");
        assert!(w.accept(2));
        assert_eq!(w.recv_watermark(), 2);
    }

    #[test]
    fn out_of_order_delivery_applies_but_watermark_waits() {
        let mut w: TransferWindow<u32> = TransferWindow::new();
        assert!(w.accept(2), "seq 2 before seq 1 applies (idempotent apply)");
        assert_eq!(w.recv_watermark(), 0, "but the watermark holds at the gap");
        assert!(w.accept(1));
        assert_eq!(w.recv_watermark(), 2, "filling the gap releases both");
        assert!(!w.accept(2), "the straggler re-send is a duplicate now");
    }

    #[test]
    fn unacked_payloads_survive_for_resend() {
        let mut w: TransferWindow<&str> = TransferWindow::new();
        w.send_with(|_| "a");
        w.send_with(|_| "b");
        w.ack(1);
        let pending: Vec<&str> = w.unacked().map(|(_, p)| *p).collect();
        assert_eq!(pending, ["b"], "only the unacked payload is re-sendable");
        assert!(!w.fully_acked());
        w.ack(2);
        assert!(w.fully_acked());
    }

    #[test]
    fn stale_ack_never_regresses_the_watermark() {
        let mut w: SenderWindow<u32> = SenderWindow::new();
        w.send_with(|_| 10);
        w.send_with(|_| 20);
        w.ack(2);
        w.ack(1); // late duplicate of an older ack
        assert_eq!(w.watermark(), 2);
        assert!(w.fully_acked());
    }

    #[test]
    fn closed_channel_returns_in_flight_payloads_and_rejects_sends() {
        let mut w: TransferWindow<u32> = TransferWindow::new();
        w.send_with(|_| 7);
        w.send_with(|_| 8);
        w.ack(1);
        let reclaimed = w.close();
        assert_eq!(reclaimed, [8], "only unacked payloads are reclaimed");
        assert!(!w.is_open());
        assert!(w.send_with(|_| 9).is_none(), "closed channel refuses sends");
        w.reset();
        assert!(w.is_open(), "reset reopens for a new epoch");
        assert!(w.send_with(|_| 9).is_some());
    }

    #[test]
    fn ack_tracker_dedups_and_tracks_watermark() {
        let mut t = AckTracker::default();
        assert!(t.fresh(1));
        assert!(!t.fresh(1), "duplicates are never fresh");
        assert!(t.fresh(3), "out-of-order is fresh (applied immediately)");
        assert_eq!(t.watermark(), 1, "the watermark waits for the gap");
        assert!(t.fresh(2));
        assert!(!t.fresh(3));
        assert_eq!(t.watermark(), 3);
    }
}
