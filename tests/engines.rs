//! End-to-end integration tests: every engine × several environments,
//! verifying that the parallel, dynamically-balanced execution produces
//! **bitwise identical** results to the sequential reference — including
//! runs where the balancer moves work mid-computation.

use dlb::apps::{Calibration, Lu, MatMul, Sor};
use dlb::core::driver::{run, AppSpec, RunConfig};
use dlb::core::InteractionMode;
use dlb::sim::{LoadModel, NodeConfig, SimDuration};
use std::sync::Arc;

/// A slow machine so that even small test problems span many balancing
/// periods (virtual time is free).
fn slow() -> Calibration {
    Calibration::new(0.001)
}

fn loaded_cluster(n: usize, loaded: usize, tasks: u32) -> Vec<NodeConfig> {
    (0..n)
        .map(|i| {
            if i == loaded {
                NodeConfig::with_load(LoadModel::Constant(tasks))
            } else {
                NodeConfig::default()
            }
        })
        .collect()
}

#[test]
fn mm_dedicated_exact() {
    let mm = Arc::new(MatMul::new(32, 2, 11, &Calibration::new(0.01)));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let report = run(
        AppSpec::Independent(mm.clone()),
        &plan,
        RunConfig::homogeneous(4),
    );
    assert_eq!(MatMul::result_c(&report.result), mm.sequential());
    // Dedicated homogeneous: DLB should not move work (threshold blocks it).
    assert_eq!(report.stats.units_moved, 0, "{:?}", report.stats);
}

#[test]
fn mm_loaded_exact_and_rebalances() {
    let mm = Arc::new(MatMul::new(48, 3, 5, &slow()));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(4);
    cfg.slave_nodes = loaded_cluster(4, 0, 1);
    let report = run(AppSpec::Independent(mm.clone()), &plan, cfg);
    assert_eq!(MatMul::result_c(&report.result), mm.sequential());
    assert!(
        report.stats.units_moved > 0,
        "expected rebalancing: {:?}",
        report.stats
    );
}

#[test]
fn mm_dlb_beats_static_under_load() {
    let mm = Arc::new(MatMul::new(48, 3, 5, &slow()));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let time_with = |enabled: bool| {
        let mut cfg = RunConfig::homogeneous(4);
        cfg.slave_nodes = loaded_cluster(4, 0, 1);
        cfg.balancer.enabled = enabled;
        let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
        assert_eq!(MatMul::result_c(&r.result), mm.sequential());
        r.compute_time
    };
    let balanced = time_with(true);
    let static_dist = time_with(false);
    assert!(
        balanced.as_secs_f64() < 0.9 * static_dist.as_secs_f64(),
        "DLB {balanced:?} should beat static {static_dist:?} by >10%"
    );
}

#[test]
fn mm_synchronous_mode_exact() {
    let mm = Arc::new(MatMul::new(32, 2, 5, &slow()));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(3);
    cfg.balancer.mode = InteractionMode::Synchronous;
    cfg.slave_nodes = loaded_cluster(3, 1, 1);
    let report = run(AppSpec::Independent(mm.clone()), &plan, cfg);
    assert_eq!(MatMul::result_c(&report.result), mm.sequential());
}

#[test]
fn mm_single_slave_works() {
    let mm = Arc::new(MatMul::new(16, 2, 5, &Calibration::new(0.01)));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let report = run(
        AppSpec::Independent(mm.clone()),
        &plan,
        RunConfig::homogeneous(1),
    );
    assert_eq!(MatMul::result_c(&report.result), mm.sequential());
}

#[test]
fn mm_heterogeneous_speeds_exact() {
    let mm = Arc::new(MatMul::new(48, 3, 5, &slow()));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(4);
    for (i, node) in cfg.slave_nodes.iter_mut().enumerate() {
        node.speed = 1.0 + i as f64; // speeds 1..4
    }
    let report = run(AppSpec::Independent(mm.clone()), &plan, cfg);
    assert_eq!(MatMul::result_c(&report.result), mm.sequential());
    assert!(report.stats.units_moved > 0, "{:?}", report.stats);
}

#[test]
fn sor_dedicated_exact() {
    let sor = Arc::new(Sor::new(34, 4, 7, &slow()));
    let plan = dlb::compiler::compile(&sor.program()).unwrap();
    let report = run(
        AppSpec::Pipelined(sor.clone()),
        &plan,
        RunConfig::homogeneous(4),
    );
    assert_eq!(report.result.len(), 32);
    assert_eq!(sor.result_grid(&report.result), sor.sequential());
}

#[test]
fn sor_loaded_exact_with_midsweep_movement() {
    // The critical test of set-aside/catch-up: a persistent load imbalance
    // forces adjacent column shifts in the middle of pipelined sweeps, and
    // the result must still be bitwise identical to sequential execution.
    let sor = Arc::new(Sor::new(34, 6, 7, &slow()));
    let plan = dlb::compiler::compile(&sor.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(4);
    cfg.slave_nodes = loaded_cluster(4, 0, 2);
    let report = run(AppSpec::Pipelined(sor.clone()), &plan, cfg);
    assert_eq!(sor.result_grid(&report.result), sor.sequential());
    assert!(
        report.stats.units_moved > 0,
        "expected column shifts: {:?}",
        report.stats
    );
}

#[test]
fn sor_oscillating_load_exact() {
    let sor = Arc::new(Sor::new(34, 8, 3, &slow()));
    let plan = dlb::compiler::compile(&sor.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(4);
    cfg.slave_nodes[2] = NodeConfig::with_load(LoadModel::Oscillating {
        period: SimDuration::from_secs(8),
        duty: SimDuration::from_secs(4),
        tasks: 2,
    });
    let report = run(AppSpec::Pipelined(sor.clone()), &plan, cfg);
    assert_eq!(sor.result_grid(&report.result), sor.sequential());
}

#[test]
fn sor_load_on_middle_slave() {
    let sor = Arc::new(Sor::new(34, 6, 9, &slow()));
    let plan = dlb::compiler::compile(&sor.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(4);
    cfg.slave_nodes = loaded_cluster(4, 2, 2);
    let report = run(AppSpec::Pipelined(sor.clone()), &plan, cfg);
    assert_eq!(sor.result_grid(&report.result), sor.sequential());
}

#[test]
fn sor_two_slaves_exact() {
    let sor = Arc::new(Sor::new(20, 5, 1, &slow()));
    let plan = dlb::compiler::compile(&sor.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(2);
    cfg.slave_nodes = loaded_cluster(2, 1, 1);
    let report = run(AppSpec::Pipelined(sor.clone()), &plan, cfg);
    assert_eq!(sor.result_grid(&report.result), sor.sequential());
}

#[test]
fn lu_dedicated_exact() {
    let lu = Arc::new(Lu::new(40, 13, &slow()));
    let plan = dlb::compiler::compile(&lu.program()).unwrap();
    let report = run(
        AppSpec::Shrinking(lu.clone()),
        &plan,
        RunConfig::homogeneous(4),
    );
    let cols = Lu::result_cols(&report.result);
    assert_eq!(cols, lu.sequential());
    assert!(lu.residual(&cols) < 1e-9);
}

#[test]
fn lu_loaded_exact_and_rebalances() {
    let lu = Arc::new(Lu::new(48, 13, &slow()));
    let plan = dlb::compiler::compile(&lu.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(4);
    cfg.slave_nodes = loaded_cluster(4, 1, 2);
    let report = run(AppSpec::Shrinking(lu.clone()), &plan, cfg);
    assert_eq!(Lu::result_cols(&report.result), lu.sequential());
    assert!(
        report.stats.units_moved > 0,
        "expected active-column moves: {:?}",
        report.stats
    );
}

#[test]
fn determinism_identical_runs() {
    let once = || {
        let mm = Arc::new(MatMul::new(32, 2, 5, &slow()));
        let plan = dlb::compiler::compile(&mm.program()).unwrap();
        let mut cfg = RunConfig::homogeneous(4);
        cfg.slave_nodes = loaded_cluster(4, 0, 1);
        let r = run(AppSpec::Independent(mm), &plan, cfg);
        (r.elapsed, r.stats.units_moved, r.sim.events_processed)
    };
    assert_eq!(once(), once());
}

#[test]
fn efficiency_metric_sane() {
    let mm = Arc::new(MatMul::new(64, 1, 5, &Calibration::new(0.01)));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let report = run(
        AppSpec::Independent(mm.clone()),
        &plan,
        RunConfig::homogeneous(4),
    );
    let eff = report.efficiency(mm.sequential_time());
    assert!(
        (0.5..=1.0).contains(&eff),
        "efficiency should be high on a dedicated cluster: {eff}"
    );
    let speedup = report.speedup(mm.sequential_time());
    assert!(speedup > 2.0 && speedup <= 4.0, "speedup {speedup}");
}

#[test]
fn quadrature_irregular_costs_balanced_without_load() {
    // §2.1's irregular application: unit costs vary ~an order of magnitude,
    // so a static block distribution is imbalanced even on dedicated
    // machines — this is imbalance the balancer must find from measured
    // rates alone (it never sees per-unit costs).
    use dlb::apps::Quadrature;
    let q = Arc::new(Quadrature::new(256, 1e-9, &Calibration::new(0.000002)));
    let program = dlb::compiler::programs::matmul(256, 1); // shape stand-in
    let plan = dlb::compiler::compile(&program).unwrap();
    let seq = q.sequential();

    let run_with = |dlb_on: bool| {
        let mut cfg = RunConfig::homogeneous(4);
        cfg.balancer.enabled = dlb_on;
        let r = run(AppSpec::Independent(q.clone()), &plan, cfg);
        assert!((Quadrature::result_total(&r.result) - seq).abs() < 1e-12);
        r
    };
    let static_run = run_with(false);
    let dlb_run = run_with(true);
    assert!(
        dlb_run.stats.units_moved > 0,
        "irregular costs should trigger movement: {:?}",
        dlb_run.stats
    );
    assert!(
        dlb_run.compute_time.as_secs_f64() < 0.95 * static_run.compute_time.as_secs_f64(),
        "DLB {:?} should beat static {:?} on irregular work",
        dlb_run.compute_time,
        static_run.compute_time
    );
}

#[test]
fn speed_proportional_startup_reduces_movement() {
    use dlb::core::driver::StartupDistribution;
    let mm = Arc::new(MatMul::new(60, 3, 5, &slow()));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let run_with = |startup: StartupDistribution| {
        let mut cfg = RunConfig::homogeneous(4);
        for (i, node) in cfg.slave_nodes.iter_mut().enumerate() {
            node.speed = 1.0 + i as f64;
        }
        cfg.startup = startup;
        let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
        assert_eq!(MatMul::result_c(&r.result), mm.sequential());
        r
    };
    let equal = run_with(StartupDistribution::Equal);
    let proportional = run_with(StartupDistribution::SpeedProportional);
    // Knowing the speeds up front means less corrective movement and at
    // least as fast a finish.
    assert!(
        proportional.stats.units_moved < equal.stats.units_moved,
        "proportional startup moved {} vs equal {}",
        proportional.stats.units_moved,
        equal.stats.units_moved
    );
    assert!(proportional.compute_time.as_secs_f64() <= equal.compute_time.as_secs_f64() * 1.02);
}
