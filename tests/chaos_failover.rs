//! Master-failover chaos tests: the control-plane node itself is crashed
//! mid-run and a deputy slave must win the election, rebuild the session
//! from its replica, roll the survivors back, and finish **bit-exact**
//! against the sequential reference — for all three engines at 16 slaves.
//!
//! Crash timings cover the three windows the takeover protocol must fence:
//! mid-invocation (the steady state), mid-rollback (the master dies with
//! its own recovery traffic unacknowledged), and mid-transfer (slave↔slave
//! migrations in flight when the control plane vanishes). The timing-window
//! tests exploit determinism instead of guessing: a probe run with a prefix
//! of the fault plan reproduces the exact virtual times at which to aim the
//! master's crash.

use dlb::apps::{Calibration, Lu, MatMul, Sor};
use dlb::core::driver::{try_run, AppSpec, RunConfig, RunReport};
use dlb::sim::{FaultPlan, SimTime};
use std::sync::Arc;

const SLAVES: usize = 16;

/// Node 0 is the master; node `i + 1` is slave `i`.
const MASTER_NODE: usize = 0;

fn slave_node(i: usize) -> usize {
    i + 1
}

fn chaos_cfg(plan: FaultPlan) -> RunConfig {
    let mut cfg = RunConfig::homogeneous(SLAVES);
    cfg.balancer.enabled = true;
    cfg.fault_plan = Some(plan);
    cfg
}

fn mm() -> (Arc<MatMul>, dlb::compiler::ParallelPlan) {
    // 32 row-blocks over 16 slaves: two units each before balancing.
    let k = Arc::new(MatMul::new(32, 3, 7, &Calibration::new(0.05)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn sor() -> (Arc<Sor>, dlb::compiler::ParallelPlan) {
    let k = Arc::new(Sor::new(36, 4, 7, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn lu() -> (Arc<Lu>, dlb::compiler::ParallelPlan) {
    let k = Arc::new(Lu::new(24, 7, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn assert_failover(report: &RunReport, label: &str) {
    assert!(
        report.recovery.elections_held >= 1,
        "{label}: a deputy must have been elected: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.takeover_latency.is_some(),
        "{label}: the takeover blackout must be measured: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.replicas_published > 0,
        "{label}: the master must have replicated its control plane: {:?}",
        report.recovery
    );
}

/// The steady-state window: the master dies mid-invocation under every
/// engine. A deputy takes over from its replica and the run finishes with
/// a result bit-identical to the sequential reference.
#[test]
fn master_crash_mid_invocation_every_engine_exact() {
    let (mm_k, mm_plan) = mm();
    let report = try_run(
        AppSpec::Independent(mm_k.clone()),
        &mm_plan,
        chaos_cfg(FaultPlan::new(6001).crash(MASTER_NODE, SimTime(200_000))),
    )
    .expect("mm: run must survive the master crash");
    assert_eq!(
        MatMul::result_c(&report.result),
        mm_k.sequential(),
        "mm: failover result must be exact"
    );
    assert_failover(&report, "mm");

    let (sor_k, sor_plan) = sor();
    let report = try_run(
        AppSpec::Pipelined(sor_k.clone()),
        &sor_plan,
        chaos_cfg(FaultPlan::new(6002).crash(MASTER_NODE, SimTime(300_000))),
    )
    .expect("sor: run must survive the master crash");
    assert_eq!(
        sor_k.result_grid(&report.result),
        sor_k.sequential(),
        "sor: failover result must be exact"
    );
    assert_failover(&report, "sor");
    assert!(
        report.recovery.rollbacks > 0,
        "sor: the takeover must roll survivors back to a banked checkpoint: {:?}",
        report.recovery
    );

    let (lu_k, lu_plan) = lu();
    let report = try_run(
        AppSpec::Shrinking(lu_k.clone()),
        &lu_plan,
        chaos_cfg(FaultPlan::new(6003).crash(MASTER_NODE, SimTime(200_000))),
    )
    .expect("lu: run must survive the master crash");
    assert_eq!(
        Lu::result_cols(&report.result),
        lu_k.sequential(),
        "lu: failover result must be exact"
    );
    assert_failover(&report, "lu");
    assert!(
        report.recovery.rollbacks > 0,
        "lu: the takeover must roll survivors back to a banked checkpoint: {:?}",
        report.recovery
    );
}

/// The mid-rollback window: a slave crashes first, and the master dies
/// moments after declaring it dead — with its own rollback traffic still
/// unacknowledged on the survivors' links. The elected deputy must fence
/// out the half-applied rollback (stale epochs below the reign floor) and
/// re-scatter from its replica.
#[test]
fn master_crash_mid_rollback_is_fenced_and_redone() {
    let (k, plan) = sor();
    let first = |seed| FaultPlan::new(seed).crash(slave_node(3), SimTime(300_000));

    let probe = try_run(AppSpec::Pipelined(k.clone()), &plan, chaos_cfg(first(6101)))
        .expect("single-crash probe must recover");
    let death = probe
        .recovery
        .first_death
        .expect("probe must declare the crashed slave dead")
        .0;
    assert!(
        probe.recovery.rollbacks > 0,
        "probe must have rolled back: {:?}",
        probe.recovery
    );

    // Identical trace up to `death`; the master dies 300 µs after the
    // death declaration, i.e. right after broadcasting the rollback.
    let fault = first(6101).crash(MASTER_NODE, SimTime(death + 300));
    let report = try_run(AppSpec::Pipelined(k.clone()), &plan, chaos_cfg(fault))
        .expect("master crash mid-rollback must be survivable");
    assert_eq!(
        k.result_grid(&report.result),
        k.sequential(),
        "mid-rollback failover result must be exact"
    );
    assert_failover(&report, "sor mid-rollback");
    assert!(
        report.recovery.rollbacks > 0,
        "the takeover must have issued its own rollback: {:?}",
        report.recovery
    );
}

/// Same window for the shrinking engine, which checkpoints shrinking
/// active sets: the master dies right after its death declaration for a
/// crashed slave.
#[test]
fn shrinking_master_crash_mid_rollback() {
    let (k, plan) = lu();
    let first = |seed| FaultPlan::new(seed).crash(slave_node(5), SimTime(200_000));

    let probe = try_run(AppSpec::Shrinking(k.clone()), &plan, chaos_cfg(first(6103)))
        .expect("single-crash probe must recover");
    let death = probe
        .recovery
        .first_death
        .expect("probe must declare the crashed slave dead")
        .0;

    let fault = first(6103).crash(MASTER_NODE, SimTime(death + 300));
    let report = try_run(AppSpec::Shrinking(k.clone()), &plan, chaos_cfg(fault))
        .expect("master crash mid-rollback must be survivable");
    assert_eq!(
        Lu::result_cols(&report.result),
        k.sequential(),
        "mid-rollback failover result must be exact"
    );
    assert_failover(&report, "lu mid-rollback");
}

/// The mid-transfer window: two slow slaves keep the balancer issuing
/// slave↔slave moves; the probe pins the first balancing decision, and
/// the master dies just after it — with migrations in flight that the new
/// master has never seen. The transfer windows between slaves must drain
/// or re-own without the old control plane, and the result stays exact.
#[test]
fn master_crash_mid_transfer_keeps_every_unit() {
    // 48 row-blocks (3 per slave) so the rate-proportional allocation has
    // the granularity to shed units off the two crippled slaves.
    let k = Arc::new(MatMul::new(48, 3, 7, &Calibration::new(0.05)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    let slow_cfg = |fault_plan| {
        let mut cfg = chaos_cfg(fault_plan);
        cfg.slave_nodes[2].speed = 0.3;
        cfg.slave_nodes[9].speed = 0.3;
        cfg.record_timeline = true;
        cfg
    };

    let probe = try_run(
        AppSpec::Independent(k.clone()),
        &plan,
        slow_cfg(FaultPlan::new(6102)),
    )
    .expect("quiet probe must complete");
    assert!(
        probe.stats.units_moved > 0,
        "the imbalance must drive migrations: {:?}",
        probe.stats
    );
    let first_decision = probe
        .timeline
        .first()
        .expect("timeline must record the first balancing decision")
        .t
        .0;

    let fault = FaultPlan::new(6102).crash(MASTER_NODE, SimTime(first_decision + 200));
    let report = try_run(AppSpec::Independent(k.clone()), &plan, slow_cfg(fault))
        .expect("master crash mid-transfer must be survivable");
    assert_eq!(
        MatMul::result_c(&report.result),
        k.sequential(),
        "mid-transfer failover result must be exact"
    );
    assert_failover(&report, "mm mid-transfer");
}

/// The takeover master is itself mortal: the original master dies, a
/// deputy takes over, and then the *winner's node* crashes too. A second
/// election (higher term) must supersede the first reign and still finish
/// the run exactly.
#[test]
fn second_failover_after_the_winner_dies() {
    let (k, plan) = mm();
    // Probe: master dies at 0.2 s, one failover. The probe pins when the
    // first reign began and when the run ends, so the second crash — the
    // winner's own node, deputy 0 on node 1 — lands squarely inside the
    // first reign.
    let first = |seed| FaultPlan::new(seed).crash(MASTER_NODE, SimTime(200_000));
    let probe = try_run(
        AppSpec::Independent(k.clone()),
        &plan,
        chaos_cfg(first(6104)),
    )
    .expect("single-failover probe must recover");
    let reign_start = 200_000
        + probe
            .recovery
            .takeover_latency
            .expect("probe must have failed over")
            .0;
    let mid_reign = (reign_start + probe.elapsed.0) / 2;
    assert!(mid_reign < probe.elapsed.0, "aim inside the run");

    let fault = first(6104).crash(slave_node(0), SimTime(mid_reign));
    let report = try_run(AppSpec::Independent(k.clone()), &plan, chaos_cfg(fault))
        .expect("a second failover must be survivable");
    assert_eq!(
        MatMul::result_c(&report.result),
        k.sequential(),
        "double-failover result must be exact"
    );
    assert_eq!(
        report.recovery.elections_held, 2,
        "both failovers must have held an election: {:?}",
        report.recovery
    );
}

/// Failover is part of the deterministic trace: the same crash plan
/// reproduces the identical trace hash, recovery counters, and result; a
/// different seed diverges.
#[test]
fn failover_is_deterministic() {
    let (k, plan) = sor();
    let run_one = |seed: u64| {
        let fault = FaultPlan::new(seed)
            .drop_all(0.02)
            .crash(MASTER_NODE, SimTime(300_000));
        try_run(AppSpec::Pipelined(k.clone()), &plan, chaos_cfg(fault))
            .expect("failover under drops must be survivable")
    };
    let a = run_one(6105);
    let b = run_one(6105);
    assert_eq!(a.sim.trace_hash, b.sim.trace_hash, "same seed ⇒ same trace");
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(k.result_grid(&a.result), k.sequential());
    let c = run_one(6106);
    assert_ne!(
        a.sim.trace_hash, c.sim.trace_hash,
        "different fault seed ⇒ different trace"
    );
}
