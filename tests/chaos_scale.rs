//! Scale chaos tests: the fault matrix at 16 slaves, plus the two
//! nastiest timing windows — a second crash landing while the rollback
//! for the first is still in flight, and a crash landing inside the
//! final gather so the master must roll back and redo it.
//!
//! The timing-window tests exploit determinism instead of guessing:
//! a fault plan is invisible until its first fault fires, so a probe
//! run with a prefix of the plan reproduces the exact virtual times
//! (settlement, first death) at which to aim the next fault.

use dlb::apps::{Calibration, Lu, MatMul, Sor};
use dlb::core::driver::{try_run, AppSpec, RunConfig, RunReport};
use dlb::sim::{FaultPlan, SimDuration, SimTime};
use std::sync::Arc;

const SLAVES: usize = 16;

/// Node `i + 1` is slave `i` (node 0 is the master).
fn slave_node(i: usize) -> usize {
    i + 1
}

fn chaos_cfg(plan: FaultPlan, balancer_on: bool) -> RunConfig {
    let mut cfg = RunConfig::homogeneous(SLAVES);
    cfg.balancer.enabled = balancer_on;
    cfg.fault_plan = Some(plan);
    cfg
}

fn mm() -> (Arc<MatMul>, dlb::compiler::ParallelPlan) {
    // 32 row-blocks over 16 slaves: two units each before balancing.
    let k = Arc::new(MatMul::new(32, 3, 7, &Calibration::new(0.05)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn sor() -> (Arc<Sor>, dlb::compiler::ParallelPlan) {
    // 34 interior columns over 16 slaves.
    let k = Arc::new(Sor::new(36, 4, 7, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

fn lu() -> (Arc<Lu>, dlb::compiler::ParallelPlan) {
    let k = Arc::new(Lu::new(24, 7, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&k.program()).unwrap();
    (k, plan)
}

#[derive(Clone, Copy, Debug)]
enum Fault {
    Crash,
    Drop,
    Dup,
    Jitter,
}

const FAULTS: [Fault; 4] = [Fault::Crash, Fault::Drop, Fault::Dup, Fault::Jitter];

impl Fault {
    fn plan(self, seed: u64, crash_at: u64) -> FaultPlan {
        match self {
            Fault::Crash => FaultPlan::new(seed).crash(slave_node(5), SimTime(crash_at)),
            Fault::Drop => FaultPlan::new(seed).drop_all(0.05),
            Fault::Dup => FaultPlan::new(seed).dup_all(0.05),
            Fault::Jitter => FaultPlan::new(seed).jitter_all(0.2, SimDuration::from_millis(20)),
        }
    }
}

/// The chaos matrix at 16 slaves: {engine} x {balancer on/off} x
/// {crash, drop, dup, jitter}. Every combination completes with a
/// result bit-identical to the sequential reference, exactly as the
/// 4-slave matrix does.
#[test]
fn scale_matrix_sixteen_slaves_every_engine_exact() {
    let (mm_k, mm_plan) = mm();
    let (sor_k, sor_plan) = sor();
    let (lu_k, lu_plan) = lu();
    for (bi, balancer_on) in [true, false].into_iter().enumerate() {
        for (fi, fault) in FAULTS.into_iter().enumerate() {
            let seed = 3000 + (bi * 10 + fi) as u64;
            let label = |eng: &str| format!("{eng}x16 balancer={balancer_on} fault={fault:?}");

            let report = try_run(
                AppSpec::Independent(mm_k.clone()),
                &mm_plan,
                chaos_cfg(fault.plan(seed, 200_000), balancer_on),
            )
            .unwrap_or_else(|e| panic!("{}: {}", label("mm"), e.error));
            assert_eq!(
                MatMul::result_c(&report.result),
                mm_k.sequential(),
                "{}: result must be exact",
                label("mm")
            );
            if matches!(fault, Fault::Crash) {
                assert_eq!(
                    report.recovery.slaves_declared_dead,
                    1,
                    "{}: crash must be detected",
                    label("mm")
                );
            }

            let report = try_run(
                AppSpec::Pipelined(sor_k.clone()),
                &sor_plan,
                chaos_cfg(fault.plan(seed + 100, 300_000), balancer_on),
            )
            .unwrap_or_else(|e| panic!("{}: {}", label("sor"), e.error));
            assert_eq!(
                sor_k.result_grid(&report.result),
                sor_k.sequential(),
                "{}: result must be exact",
                label("sor")
            );
            if matches!(fault, Fault::Crash) {
                assert!(
                    report.recovery.rollbacks > 0,
                    "{}: crash must roll survivors back: {:?}",
                    label("sor"),
                    report.recovery
                );
            }

            let report = try_run(
                AppSpec::Shrinking(lu_k.clone()),
                &lu_plan,
                chaos_cfg(fault.plan(seed + 200, 200_000), balancer_on),
            )
            .unwrap_or_else(|e| panic!("{}: {}", label("lu"), e.error));
            assert_eq!(
                Lu::result_cols(&report.result),
                lu_k.sequential(),
                "{}: result must be exact",
                label("lu")
            );
            if matches!(fault, Fault::Crash) {
                assert!(
                    report.recovery.rollbacks > 0,
                    "{}: crash must roll survivors back: {:?}",
                    label("lu"),
                    report.recovery
                );
            }
        }
    }
}

/// A second slave crashes while the rollback for the first is still in
/// flight. The probe run (first crash only) pins the virtual time of the
/// first death declaration; the real run kills a second slave a few
/// hundred microseconds later — after the master has broadcast the
/// restore but before the victim can acknowledge it. The master must
/// notice the second death, roll back *again*, and still finish exactly.
#[test]
fn overlapping_crashes_during_inflight_rollback() {
    let (k, plan) = sor();
    let first = |seed| FaultPlan::new(seed).crash(slave_node(2), SimTime(300_000));

    let probe = try_run(
        AppSpec::Pipelined(k.clone()),
        &plan,
        chaos_cfg(first(11), true),
    )
    .expect("single-crash probe must recover");
    let death = probe
        .recovery
        .first_death
        .expect("probe must declare the crashed slave dead")
        .0;

    // Identical trace up to `death`, then the second victim dies with the
    // restore for the first rollback still unacknowledged on its link.
    let fault = first(11).crash(slave_node(9), SimTime(death + 300));
    let report = try_run(AppSpec::Pipelined(k.clone()), &plan, chaos_cfg(fault, true))
        .expect("overlapping crashes must both be recovered");
    assert_eq!(
        k.result_grid(&report.result),
        k.sequential(),
        "double-crash result must be exact"
    );
    assert_eq!(
        report.recovery.slaves_declared_dead, 2,
        "both crashes must be detected: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.rollbacks >= 2,
        "the interrupted rollback must be re-done for the second death: {:?}",
        report.recovery
    );
}

/// Crash landing inside the final gather, checkpointed engine: the quiet
/// probe pins the settlement time, then the victim dies just after the
/// master sends `Gather` — before the request can even reach it. The
/// master must abandon the gather, roll the survivors back over the dead
/// slave's units, redo the work, and gather again — still bit-exact.
#[test]
fn crash_during_gather_is_rolled_back_and_redone() {
    let (k, plan) = sor();

    let probe = try_run(
        AppSpec::Pipelined(k.clone()),
        &plan,
        chaos_cfg(FaultPlan::new(13), true),
    )
    .expect("quiet probe must complete");
    let settle = probe.compute_time.0;

    let fault = FaultPlan::new(13).crash(slave_node(4), SimTime(settle + 50));
    let report = try_run(AppSpec::Pipelined(k.clone()), &plan, chaos_cfg(fault, true))
        .expect("a death during gather must be recovered");
    assert_eq!(
        k.result_grid(&report.result),
        k.sequential(),
        "post-gather-crash result must be exact"
    );
    assert_eq!(report.recovery.slaves_declared_dead, 1);
    assert!(
        report.recovery.gathers_interrupted > 0,
        "the gather must have been interrupted by the death: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.rollbacks > 0,
        "the dead slave's final units must be redone from checkpoint: {:?}",
        report.recovery
    );
}

/// Same window for the independent engine: the master re-scatters or
/// recomputes the dead slave's finished-but-ungathered units instead of
/// rolling back.
#[test]
fn independent_crash_during_gather_recovers_units() {
    let (k, plan) = mm();

    let probe = try_run(
        AppSpec::Independent(k.clone()),
        &plan,
        chaos_cfg(FaultPlan::new(17), true),
    )
    .expect("quiet probe must complete");
    let settle = probe.compute_time.0;

    let fault = FaultPlan::new(17).crash(slave_node(7), SimTime(settle + 50));
    let report = try_run(
        AppSpec::Independent(k.clone()),
        &plan,
        chaos_cfg(fault, true),
    )
    .expect("a death during gather must be recovered");
    assert_eq!(
        MatMul::result_c(&report.result),
        k.sequential(),
        "post-gather-crash result must be exact"
    );
    assert_eq!(report.recovery.slaves_declared_dead, 1);
    assert!(
        report.recovery.gathers_interrupted > 0,
        "the gather must have been interrupted by the death: {:?}",
        report.recovery
    );
    assert!(
        report.recovery.units_recomputed > 0 || report.recovery.units_restored > 0,
        "the dead slave's ungathered units must be recomputed or restored: {:?}",
        report.recovery
    );
}

/// Scale runs stay deterministic: the 16-slave double-crash scenario
/// reproduces the identical trace, counters, and result.
#[test]
fn scale_recovery_is_deterministic() {
    let (k, plan) = lu();
    let run_one = || {
        let fault = FaultPlan::new(23)
            .drop_all(0.02)
            .crash(slave_node(3), SimTime(200_000));
        try_run(AppSpec::Shrinking(k.clone()), &plan, chaos_cfg(fault, true))
            .expect("shrinking engine must recover at scale")
    };
    let a: RunReport = run_one();
    let b: RunReport = run_one();
    assert_eq!(a.sim.trace_hash, b.sim.trace_hash, "same seed ⇒ same trace");
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(Lu::result_cols(&a.result), k.sequential());
}
