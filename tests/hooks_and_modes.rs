//! Integration tests of the hook/interaction machinery and frequency
//! control observable from outside: status volumes, skip behaviour, the
//! pipelined-vs-synchronous cost gap, and Fig-9-style timeline tracking.

use dlb::apps::{Calibration, MatMul, Sor};
use dlb::core::driver::{run, AppSpec, RunConfig};
use dlb::core::InteractionMode;
use dlb::sim::{LoadModel, NodeConfig, SimDuration};
use std::sync::Arc;

#[test]
fn hook_skipping_bounds_status_volume() {
    // 64 units/invocation x 4 invocations at ~50 ms/unit on 4 slaves:
    // each slave computes a unit every 50 ms but the 500 ms balancing
    // period makes it skip ~9 hooks out of 10.
    let mm = Arc::new(MatMul::new(64, 4, 3, &Calibration::new(0.164)));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let r = run(
        AppSpec::Independent(mm.clone()),
        &plan,
        RunConfig::homogeneous(4),
    );
    let per_unit = 256; // one status per unit computed
    assert!(
        r.stats.statuses < per_unit / 3,
        "hook skipping ineffective: {} statuses",
        r.stats.statuses
    );
    assert!(
        r.stats.statuses >= 4 * 4, // at least one per slave per invocation
        "too few statuses to balance: {}",
        r.stats.statuses
    );
}

#[test]
fn synchronous_interactions_cost_more_with_slow_network() {
    let mm = Arc::new(MatMul::new(48, 2, 3, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let time_with = |mode: InteractionMode| {
        let mut cfg = RunConfig::homogeneous(4);
        cfg.net.latency = SimDuration::from_millis(30); // sluggish network
        cfg.balancer.mode = mode;
        let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
        assert_eq!(MatMul::result_c(&r.result), mm.sequential());
        r.compute_time
    };
    let pipelined = time_with(InteractionMode::Pipelined);
    let synchronous = time_with(InteractionMode::Synchronous);
    assert!(
        synchronous > pipelined,
        "synchronous ({synchronous:?}) should cost more than pipelined ({pipelined:?}) when the master round trip is slow"
    );
}

#[test]
fn timeline_tracks_oscillating_load() {
    // The Fig-9 phenomenon in miniature: the adjusted rate of the loaded
    // slave must be materially lower during loaded periods than during
    // free periods, and its assignment must shrink below the equal share
    // while loaded.
    // ~0.5 s per unit: rate samples resolve the 16 s load oscillation.
    let mm = Arc::new(MatMul::new(64, 6, 3, &Calibration::new(0.0164)));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(4);
    cfg.slave_nodes[0] = NodeConfig::with_load(LoadModel::Oscillating {
        period: SimDuration::from_secs(16),
        duty: SimDuration::from_secs(8),
        tasks: 1,
    });
    cfg.record_timeline = true;
    let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
    assert_eq!(MatMul::result_c(&r.result), mm.sequential());

    let s0: Vec<_> = r.timeline.iter().filter(|s| s.slave == 0).collect();
    assert!(s0.len() > 10, "need enough samples: {}", s0.len());
    // Classify samples by the phase of the oscillation at their time.
    let loaded: Vec<f64> = s0
        .iter()
        .filter(|s| (s.t.micros() % 16_000_000) < 8_000_000)
        .map(|s| s.adjusted_rate)
        .collect();
    let free: Vec<f64> = s0
        .iter()
        .filter(|s| (s.t.micros() % 16_000_000) >= 8_000_000)
        .map(|s| s.adjusted_rate)
        .collect();
    assert!(!loaded.is_empty() && !free.is_empty());
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&loaded) < 0.8 * avg(&free),
        "adjusted rate should track the load: loaded {:.1} vs free {:.1}",
        avg(&loaded),
        avg(&free)
    );
    // Work shed below the equal share at some point while loaded.
    let min_assigned = s0.iter().map(|s| s.assigned).min().unwrap();
    assert!(min_assigned < 16, "assignment never shrank: {min_assigned}");
}

#[test]
fn sor_grain_scales_with_quantum() {
    // §4.4: the strip-mining block targets 1.5 quanta, so a bigger quantum
    // means fewer, larger blocks — observable as fewer statuses.
    let sor = Arc::new(Sor::new(130, 4, 3, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&sor.program()).unwrap();
    let statuses_with = |quantum_ms: u64| {
        let mut cfg = RunConfig::homogeneous(4);
        for n in cfg
            .slave_nodes
            .iter_mut()
            .chain(std::iter::once(&mut cfg.master_node))
        {
            n.quantum = SimDuration::from_millis(quantum_ms);
        }
        let r = run(AppSpec::Pipelined(sor.clone()), &plan, cfg);
        assert_eq!(sor.result_grid(&r.result), sor.sequential());
        r.stats.statuses
    };
    let fine = statuses_with(20);
    let coarse = statuses_with(400);
    assert!(
        coarse < fine,
        "a larger quantum should coarsen balancing: {coarse} !< {fine}"
    );
}

#[test]
fn disabled_balancer_still_exchanges_no_work() {
    let mm = Arc::new(MatMul::new(32, 2, 3, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&mm.program()).unwrap();
    let mut cfg = RunConfig::homogeneous(4);
    cfg.slave_nodes[0] = NodeConfig::with_load(LoadModel::Constant(2));
    cfg.balancer.enabled = false;
    let r = run(AppSpec::Independent(mm.clone()), &plan, cfg);
    assert_eq!(r.stats.units_moved, 0);
    assert_eq!(MatMul::result_c(&r.result), mm.sequential());
}
