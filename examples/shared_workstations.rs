//! A day in the life of a shared workstation cluster.
//!
//! ```sh
//! cargo run --release --example shared_workstations
//! ```
//!
//! Eight workstations, three of which belong to colleagues who log in and
//! out during the run (modeled as load traces). The balancer tracks the
//! changing computation rates and keeps shifting LU columns toward the
//! machines with spare cycles; the work-assignment timeline below is the
//! same data as the paper's Figure 9.

use dlb::apps::{Calibration, Lu};
use dlb::core::driver::{run, AppSpec, RunConfig};
use dlb::sim::{LoadModel, NodeConfig, SimTime};
use std::sync::Arc;

fn main() {
    let cal = Calibration::default();
    let lu = Arc::new(Lu::new(700, 3, &cal));
    let plan = dlb::compiler::compile(&lu.program()).expect("compiles");

    let s = |t: u64| SimTime(t * 1_000_000);
    let mut cfg = RunConfig::homogeneous(8);
    // A colleague starts a build on node 1 twenty seconds in.
    cfg.slave_nodes[1] = NodeConfig::with_load(LoadModel::Trace(vec![(s(0), 0), (s(20), 2)]));
    // Node 4 is busy early, then frees up.
    cfg.slave_nodes[4] = NodeConfig::with_load(LoadModel::Trace(vec![(s(0), 1), (s(40), 0)]));
    // Node 6 has a periodic cron-style job.
    cfg.slave_nodes[6] = NodeConfig::with_load(LoadModel::Oscillating {
        period: dlb::sim::SimDuration::from_secs(30),
        duty: dlb::sim::SimDuration::from_secs(8),
        tasks: 1,
    });
    cfg.record_timeline = true;

    let report = run(AppSpec::Shrinking(lu.clone()), &plan, cfg);
    let seq = lu.sequential_time();
    println!(
        "LU {}x{} on 8 shared workstations: {:.1} s (sequential {:.1} s, efficiency {:.2})",
        lu.n(),
        lu.n(),
        report.compute_time.as_secs_f64(),
        seq.as_secs_f64(),
        report.efficiency(seq)
    );
    println!(
        "{} active columns moved across {} transfers\n",
        report.stats.units_moved, report.stats.moves_issued
    );

    // Sample the assignment of the three interesting nodes every ~10 s.
    println!("time_s  node1  node4  node6   (assigned active columns)");
    let mut next = 0.0;
    let mut latest = [0u64; 8];
    for sample in &report.timeline {
        latest[sample.slave] = sample.assigned;
        if sample.t.as_secs_f64() >= next {
            println!(
                "{:6.1} {:6} {:6} {:6}",
                sample.t.as_secs_f64(),
                latest[1],
                latest[4],
                latest[6]
            );
            next += 10.0;
        }
    }

    let cols = Lu::result_cols(&report.result);
    assert_eq!(cols, lu.sequential());
    assert!(lu.residual(&cols) < 1e-8);
    println!("\nfactorization verified (LU = A) ✓");
}
