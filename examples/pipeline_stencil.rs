//! A pipelined stencil: what the compiler does with loop-carried
//! dependences, end to end.
//!
//! ```sh
//! cargo run --release --example pipeline_stencil
//! ```
//!
//! SOR's columns depend on their neighbours, so iterations cannot be
//! scattered freely: the compiler detects distance ±1 dependences, emits a
//! wavefront pipeline with strip-mined row blocks, restricts work movement
//! to adjacent slaves, and the runtime keeps the answer bit-identical to
//! sequential execution even while columns migrate mid-sweep.

use dlb::apps::{Calibration, Sor};
use dlb::compiler::{analyze, codegen};
use dlb::core::driver::{run, AppSpec, RunConfig};
use dlb::sim::{LoadModel, NodeConfig, SimDuration};
use std::sync::Arc;

fn main() {
    let cal = Calibration::default();
    let sor = Arc::new(Sor::new(600, 10, 7, &cal));
    let program = sor.program();

    // What the compiler sees:
    let deps = analyze(&program);
    println!(
        "carried dependence distances: {:?}",
        deps.carried_distances()
    );
    let plan = dlb::compiler::compile(&program).expect("compiles");
    println!(
        "pattern {:?}; movement {:?}; pipeline along `{}`\n",
        plan.pattern,
        plan.movement,
        plan.pipeline.as_ref().unwrap().inner_var
    );

    // The generated SPMD shape (the paper's Fig. 3):
    println!("{}", codegen::emit(&program, &plan));

    // Run on 6 workstations; one has a user whose job comes and goes.
    let mut cfg = RunConfig::homogeneous(6);
    cfg.slave_nodes[2] = NodeConfig::with_load(LoadModel::Oscillating {
        period: SimDuration::from_secs(12),
        duty: SimDuration::from_secs(6),
        tasks: 1,
    });
    let report = run(AppSpec::Pipelined(sor.clone()), &plan, cfg);

    let seq = sor.sequential_time();
    println!(
        "parallel {:.1} s vs sequential {:.1} s (speedup {:.2}); {} columns shifted",
        report.compute_time.as_secs_f64(),
        seq.as_secs_f64(),
        report.speedup(seq),
        report.stats.units_moved
    );

    assert_eq!(sor.result_grid(&report.result), sor.sequential());
    println!("grid bitwise-identical to the sequential sweep order ✓");
}
