//! Heterogeneous workstations: no weights, no configuration.
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```
//!
//! The paper's §3.2: because slave performance is measured in work units
//! per second, heterogeneous processors need no special handling — a node
//! twice as fast simply reports twice the rate and ends up with twice the
//! rows. This example runs MM on a cluster with 1x/1.5x/2x/3x nodes and
//! shows the assignment converging to the speed ratios.

use dlb::apps::{Calibration, MatMul};
use dlb::core::driver::{run, AppSpec, RunConfig};
use std::sync::Arc;

fn main() {
    let cal = Calibration::default();
    // Three passes so the balancer has time to converge and the moved data
    // gets reused (the paper's locality argument for moving work rather
    // than re-fetching it).
    let mm = Arc::new(MatMul::new(400, 3, 5, &cal));
    let plan = dlb::compiler::compile(&mm.program()).expect("compiles");

    let speeds = [1.0, 1.5, 2.0, 3.0];
    let mut cfg = RunConfig::homogeneous(speeds.len());
    for (node, &s) in cfg.slave_nodes.iter_mut().zip(&speeds) {
        node.speed = s;
    }
    cfg.record_timeline = true;
    let report = run(AppSpec::Independent(mm.clone()), &plan, cfg);

    // Converged assignment: the last sample of the middle invocation (the
    // final invocation reports *remaining* work, which drains to zero).
    let mut finals = [0u64; 4];
    for s in report.timeline.iter().filter(|s| s.invocation < 2) {
        finals[s.slave] = s.assigned;
    }
    let total_speed: f64 = speeds.iter().sum();
    println!("node  speed  final_rows  ideal_share");
    for (i, &s) in speeds.iter().enumerate() {
        println!(
            "{i:>4}  {s:>5.1}  {:>10}  {:>11.0}",
            finals[i],
            400.0 * s / total_speed
        );
    }

    let seq = mm.sequential_time();
    let ideal = seq.as_secs_f64() / total_speed;
    println!(
        "\nelapsed {:.1} s vs {:.1} s ideal on a {total_speed}x-aggregate machine",
        report.compute_time.as_secs_f64(),
        ideal
    );
    assert_eq!(MatMul::result_c(&report.result), mm.sequential());
    println!("result verified ✓");
}
