//! Quickstart: parallelize a loop nest with dynamic load balancing.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The flow is always the same:
//!  1. describe the sequential program (or use a bundled one) — the
//!     compiler derives the execution pattern, movement restrictions, and
//!     hook placement;
//!  2. pair it with a kernel that does the real arithmetic;
//!  3. describe the cluster (speeds, OS quantum, competing load);
//!  4. run — and read back timings, efficiency, and the verified result.

use dlb::apps::{Calibration, MatMul};
use dlb::core::driver::{run, AppSpec, RunConfig};
use dlb::sim::{LoadModel, NodeConfig};
use std::sync::Arc;

fn main() {
    // A 300x300 matrix multiplication, calibrated to the paper's
    // Sun 4/330-class nodes (~1 MFLOP/s).
    let cal = Calibration::default();
    let mm = Arc::new(MatMul::new(300, 1, 42, &cal));

    // 1. Compile: the IR program distributes the row loop.
    let plan = dlb::compiler::compile(&mm.program()).expect("compiles");
    println!("pattern: {:?}, movement: {:?}", plan.pattern, plan.movement);
    println!(
        "hook: after each `{}` iteration",
        plan.hooks.chosen_site().loop_var
    );

    // 3. Four workstations; someone is compiling on the first one.
    let mut cfg = RunConfig::homogeneous(4);
    cfg.slave_nodes[0] = NodeConfig::with_load(LoadModel::Constant(1));

    // 4. Run with dynamic load balancing...
    let balanced = run(AppSpec::Independent(mm.clone()), &plan, cfg);

    // ...and once more with a static distribution for comparison.
    let mut static_cfg = RunConfig::homogeneous(4);
    static_cfg.slave_nodes[0] = NodeConfig::with_load(LoadModel::Constant(1));
    static_cfg.balancer.enabled = false;
    let static_run = run(AppSpec::Independent(mm.clone()), &plan, static_cfg);

    let seq = mm.sequential_time();
    println!("sequential:        {:7.1} s", seq.as_secs_f64());
    println!(
        "static (4 nodes):  {:7.1} s   efficiency {:.2}",
        static_run.compute_time.as_secs_f64(),
        static_run.efficiency(seq)
    );
    println!(
        "balanced (4 nodes):{:7.1} s   efficiency {:.2}   ({} rows moved)",
        balanced.compute_time.as_secs_f64(),
        balanced.efficiency(seq),
        balanced.stats.units_moved
    );

    // The result is exactly what the sequential program computes.
    assert_eq!(MatMul::result_c(&balanced.result), mm.sequential());
    println!("result verified against sequential execution ✓");
}
