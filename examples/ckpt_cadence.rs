//! Adaptive checkpoint cadence: the overhead/recovery trade, measured.
//!
//! ```sh
//! cargo run --release --example ckpt_cadence
//! ```
//!
//! The checkpointed engines (pipelined SOR, shrinking LU) ship a snapshot
//! fragment at every sweep barrier by default — the safest cadence, and
//! the one the chaos suite pins bit-exact. `ckpt_max_skip` lets the master
//! stretch that stride: after each settled invocation it folds the wall
//! time into an EMA and picks the widest stride whose expected rollback
//! loss (`stride × EMA`) still fits `ckpt_loss_budget`, capped at
//! `ckpt_max_skip + 1`. Fewer snapshots means less wire traffic while the
//! run is healthy, paid for with a longer replay when a crash does land.
//!
//! This example sweeps the cap on the same seeded crash and prints both
//! sides of the trade: checkpoint messages sent (overhead) against units
//! rolled back and elapsed time (recovery cost). Every row must still
//! finish bit-identical to the sequential reference — cadence is a
//! performance knob, never a correctness one.

use dlb::apps::{Calibration, Sor};
use dlb::core::driver::{try_run, AppSpec, RunConfig};
use dlb::sim::{FaultPlan, SimTime};
use std::sync::Arc;

fn main() {
    let sor = Arc::new(Sor::new(24, 4, 10, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&sor.program()).expect("compiles");
    let reference = sor.sequential();

    println!("-- pipelined SOR, 4 slaves, crash at t=0.4s, cadence sweep --");
    println!("max_skip | ckpts sent | banked | rollbacks | units rolled back | elapsed");
    let mut sent_at_skip = Vec::new();
    for max_skip in 0..=4u64 {
        let mut cfg = RunConfig::homogeneous(4);
        cfg.fault_plan = Some(FaultPlan::new(77).crash(2, SimTime(400_000)));
        cfg.fault_tolerance.ckpt_max_skip = max_skip;
        // Let the cap under sweep be the binding constraint (the default
        // 2 s loss budget would clamp the stride at ~2 on its own).
        cfg.fault_tolerance.ckpt_loss_budget = dlb::sim::SimDuration::from_secs(60);
        let report = try_run(AppSpec::Pipelined(sor.clone()), &plan, cfg)
            .expect("every cadence still recovers");
        let r = &report.recovery;
        println!(
            "{:>8} | {:>10} | {:>6} | {:>9} | {:>17} | {}",
            max_skip,
            r.checkpoints_sent,
            r.checkpoints_banked,
            r.rollbacks,
            r.units_rolled_back,
            report.elapsed
        );
        assert_eq!(
            sor.result_grid(&report.result),
            reference,
            "cadence is a performance knob, not a correctness one (max_skip={max_skip})"
        );
        sent_at_skip.push(r.checkpoints_sent);
    }
    assert!(
        sent_at_skip.last() < sent_at_skip.first(),
        "a wider stride must send fewer checkpoints"
    );
    println!("every cadence bit-identical to sequential execution ✓");

    // The quiet run shows the pure-overhead side: no crash, so the only
    // effect of a wider stride is fewer snapshot messages.
    println!("\n-- same run, no faults: checkpoint overhead alone --");
    println!("max_skip | ckpts sent | elapsed");
    for max_skip in [0u64, 4] {
        let mut cfg = RunConfig::homogeneous(4);
        cfg.fault_plan = Some(FaultPlan::new(77));
        cfg.fault_tolerance.ckpt_max_skip = max_skip;
        cfg.fault_tolerance.ckpt_loss_budget = dlb::sim::SimDuration::from_secs(60);
        let report =
            try_run(AppSpec::Pipelined(sor.clone()), &plan, cfg).expect("quiet runs complete");
        println!(
            "{:>8} | {:>10} | {}",
            max_skip, report.recovery.checkpoints_sent, report.elapsed
        );
        assert_eq!(sor.result_grid(&report.result), reference);
    }
}
