//! Master failover: the control-plane node dies and a deputy takes over.
//!
//! ```sh
//! cargo run --release --example failover
//! ```
//!
//! In fault mode the master replicates its control-plane state — term,
//! epoch, membership, invocation watermark, and (for the checkpointed
//! engines) the newest banked snapshot — to the lowest-ranked `deputies`
//! slaves at every `replicate_every`-th barrier. When the master falls
//! silent past `master_suspicion`, the deputies hold a quorum election
//! (one vote per term, freshest replica wins, candidacies staggered by
//! rank); the winner announces its reign, fences it behind a `term << 32`
//! epoch floor, rolls the survivors back to the replicated restart point,
//! and finishes the run — bit-identical to the sequential reference.
//!
//! This example sweeps the replication cadence on the same seeded master
//! crash and prints the trade it controls: replication traffic while the
//! run is healthy against how much work the takeover rolls back when the
//! master actually dies. The blackout (takeover latency) is set by the
//! suspicion window and election, not by the cadence — staleness costs
//! recompute, never detection time.

use dlb::apps::{Calibration, MatMul, Sor};
use dlb::core::driver::{try_run, AppSpec, RunConfig};
use dlb::sim::{FaultPlan, SimTime};
use std::sync::Arc;

/// Node 0 hosts the master; slave `i` lives on node `i + 1`.
const MASTER_NODE: usize = 0;

fn main() {
    let sor = Arc::new(Sor::new(24, 4, 10, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&sor.program()).expect("compiles");
    let reference = sor.sequential();

    println!("-- pipelined SOR, 8 slaves, master crashes at t=2.2s --");
    println!("replicate_every | replicas | repl bytes | blackout | rolled back | elapsed");
    let mut bytes_at = Vec::new();
    for every in [1u64, 2, 4] {
        let mut cfg = RunConfig::homogeneous(8);
        cfg.fault_plan = Some(FaultPlan::new(91).crash(MASTER_NODE, SimTime(2_200_000)));
        cfg.fault_tolerance.replicate_every = every;
        let report = try_run(AppSpec::Pipelined(sor.clone()), &plan, cfg)
            .expect("the run must survive the master crash");
        let r = &report.recovery;
        assert_eq!(r.elections_held, 1, "exactly one failover");
        println!(
            "{:>15} | {:>8} | {:>10} | {} | {:>11} | {}",
            every,
            r.replicas_published,
            r.replication_bytes,
            r.takeover_latency.expect("blackout measured"),
            r.units_rolled_back,
            report.elapsed
        );
        assert_eq!(
            sor.result_grid(&report.result),
            reference,
            "failover must be exact (replicate_every={every})"
        );
        bytes_at.push(r.replication_bytes);
    }
    assert!(
        bytes_at.last() < bytes_at.first(),
        "a sparser cadence must ship fewer replication bytes"
    );
    println!("every cadence bit-identical to sequential execution ✓");

    // The independent engine replicates no snapshot at all: its replica is
    // the invocation watermark, and the takeover recomputes unit state from
    // initial data. Same blackout, cheapest possible replica.
    let mm = Arc::new(MatMul::new(16, 3, 7, &Calibration::new(0.05)));
    let plan = dlb::compiler::compile(&mm.program()).expect("compiles");
    println!("\n-- independent matmul, 8 slaves, master crashes at t=0.1s --");
    let mut cfg = RunConfig::homogeneous(8);
    cfg.fault_plan = Some(FaultPlan::new(92).crash(MASTER_NODE, SimTime(100_000)));
    let report = try_run(AppSpec::Independent(mm.clone()), &plan, cfg)
        .expect("the run must survive the master crash");
    let r = &report.recovery;
    println!(
        "elections {} | blackout {} | replicas {} ({} bytes) | rolled back {} | elapsed {}",
        r.elections_held,
        r.takeover_latency.expect("blackout measured"),
        r.replicas_published,
        r.replication_bytes,
        r.units_rolled_back,
        report.elapsed
    );
    assert_eq!(
        MatMul::result_c(&report.result),
        mm.sequential(),
        "watermark-only failover must be exact"
    );
    println!("takeover from the invocation watermark bit-identical ✓");
}
