//! Fault injection: crash a node mid-run and watch the runtime recover.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```
//!
//! A `FaultPlan` is part of the deterministic simulation: message drops,
//! duplicates, delays, and node crashes are drawn from a seeded stream, so
//! the same seed replays the identical failure — and the identical
//! recovery. Under faults the driver runs the fault-tolerant protocol:
//!  - the independent pattern *recovers* — a dead slave is detected by
//!    silence, evicted, and its units re-scattered to the survivors;
//!  - the pipelined/shrinking patterns carry dependences across nodes, so
//!    a crash there surfaces as a typed `RunError` instead of a panic.

use dlb::apps::{Calibration, MatMul, Sor};
use dlb::core::driver::{try_run, AppSpec, RunConfig};
use dlb::sim::{FaultPlan, SimTime};
use std::sync::Arc;

fn main() {
    let cal = Calibration::new(0.05);
    let mm = Arc::new(MatMul::new(24, 3, 7, &cal));
    let plan = dlb::compiler::compile(&mm.program()).expect("compiles");

    // 5 % of messages dropped, 2 % duplicated, and slave 2 (node 3 —
    // node 0 is the master) dies 0.2 virtual seconds in.
    let faults = FaultPlan::new(42)
        .drop_all(0.05)
        .dup_all(0.02)
        .crash(3, SimTime(200_000));

    let mut cfg = RunConfig::homogeneous(4);
    cfg.fault_plan = Some(faults);

    let report = try_run(AppSpec::Independent(mm.clone()), &plan, cfg)
        .expect("the independent pattern recovers from a single crash");

    println!("-- independent pattern: crash + 5% message loss --");
    let f = &report.sim.fault;
    println!(
        "injected: {} dropped, {} duplicated, {} crashed node(s)",
        f.msgs_dropped,
        f.msgs_duplicated,
        f.crashed_nodes.len()
    );
    let r = &report.recovery;
    println!(
        "recovered: {} slave(s) declared dead, {} unit(s) re-scattered, {} re-sent message(s)",
        r.slaves_declared_dead,
        r.units_restored,
        r.start_resends + r.invocation_start_resends + r.restore_resends + r.gather_resends
    );
    if let Some(t) = r.first_death {
        println!("first death detected at t = {:.2}s", t.0 as f64 / 1e6);
    }
    assert_eq!(MatMul::result_c(&report.result), mm.sequential());
    println!("result still bit-identical to sequential execution ✓");

    // The pipelined pattern cannot lose a node: neighbours exchange
    // boundary rows every sweep. The same crash aborts with a typed error.
    let sor = Arc::new(Sor::new(18, 4, 7, &Calibration::new(0.002)));
    let sor_plan = dlb::compiler::compile(&sor.program()).expect("compiles");
    let mut cfg = RunConfig::homogeneous(4);
    cfg.fault_plan = Some(FaultPlan::new(9).crash(2, SimTime(300_000)));

    println!("\n-- pipelined pattern: same crash --");
    match try_run(AppSpec::Pipelined(sor), &sor_plan, cfg) {
        Ok(_) => unreachable!("a mid-sweep crash cannot complete"),
        Err(e) => println!("aborted cleanly: {e}"),
    }
}
