//! Fault injection: crash a node mid-run and watch the runtime recover —
//! with the dynamic load balancer live the whole time.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```
//!
//! A `FaultPlan` is part of the deterministic simulation: message drops,
//! duplicates, delays, and node crashes are drawn from a seeded stream, so
//! the same seed replays the identical failure — and the identical
//! recovery. Under faults the driver runs the fault-tolerant protocol
//! with balancing enabled: work migrations ride the sequenced transfer
//! window, so in-flight moves survive drops, duplicates, and crashes of
//! either endpoint.
//!  - the independent pattern *recovers in place* — a dead slave is
//!    detected by silence, speculatively covered by an idle survivor, then
//!    evicted and its units re-scattered;
//!  - the pipelined/shrinking patterns checkpoint at every barrier, so a
//!    crash rolls the survivors back to the latest complete snapshot and
//!    the run completes on the smaller cluster.

use dlb::apps::{Calibration, MatMul, Sor};
use dlb::core::driver::{try_run, AppSpec, RunConfig};
use dlb::sim::{FaultPlan, SimTime};
use std::sync::Arc;

fn main() {
    let cal = Calibration::new(0.05);
    let mm = Arc::new(MatMul::new(24, 3, 7, &cal));
    let plan = dlb::compiler::compile(&mm.program()).expect("compiles");

    // 5 % of messages dropped, 2 % duplicated, and slave 2 (node 3 —
    // node 0 is the master) dies 0.2 virtual seconds in. The balancer
    // stays enabled (the default): migrations and recovery interleave.
    let faults = FaultPlan::new(42)
        .drop_all(0.05)
        .dup_all(0.02)
        .crash(3, SimTime(200_000));

    let mut cfg = RunConfig::homogeneous(4);
    assert!(cfg.balancer.enabled, "balancing stays on under faults");
    cfg.fault_plan = Some(faults);

    let report = try_run(AppSpec::Independent(mm.clone()), &plan, cfg)
        .expect("the independent pattern recovers from a single crash");

    println!("-- independent pattern: crash + 5% message loss, balancer on --");
    let f = &report.sim.fault;
    println!(
        "injected: {} dropped, {} duplicated, {} crashed node(s)",
        f.msgs_dropped,
        f.msgs_duplicated,
        f.crashed_nodes.len()
    );
    let r = &report.recovery;
    println!(
        "recovered: {} slave(s) declared dead, {} unit(s) re-scattered, \
         {} unit(s) re-owned, {} re-sent message(s)",
        r.slaves_declared_dead,
        r.units_restored,
        r.units_reowned,
        r.start_resends + r.invocation_start_resends + r.restore_resends + r.gather_resends
    );
    println!(
        "speculation: {} launched, {} committed, {} unit(s) pre-computed on idle survivors",
        r.speculations_launched, r.speculations_committed, r.units_speculated
    );
    if let Some(t) = r.first_death {
        println!("first death detected at t = {:.2}s", t.0 as f64 / 1e6);
    }
    assert_eq!(MatMul::result_c(&report.result), mm.sequential());
    println!("result still bit-identical to sequential execution ✓");

    // The pipelined pattern carries dependences across nodes, so it cannot
    // simply re-scatter a dead slave's work: instead every barrier ships a
    // checkpoint, and the same crash rolls the survivors back to the
    // latest complete snapshot.
    let sor = Arc::new(Sor::new(18, 4, 7, &Calibration::new(0.002)));
    let sor_plan = dlb::compiler::compile(&sor.program()).expect("compiles");
    let mut cfg = RunConfig::homogeneous(4);
    cfg.fault_plan = Some(FaultPlan::new(9).crash(2, SimTime(300_000)));

    println!("\n-- pipelined pattern: same crash, checkpoint rollback --");
    let report = try_run(AppSpec::Pipelined(sor.clone()), &sor_plan, cfg)
        .expect("the pipelined pattern resumes from its checkpoint");
    let r = &report.recovery;
    println!(
        "recovered: {} rollback(s) from {} banked checkpoint(s), {} unit(s) rolled back",
        r.rollbacks, r.checkpoints_banked, r.units_rolled_back
    );
    assert_eq!(sor.result_grid(&report.result), sor.sequential());
    println!("result still bit-identical to sequential execution ✓");
}
