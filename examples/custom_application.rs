//! Bringing your own application to the runtime.
//!
//! ```sh
//! cargo run --release --example custom_application
//! ```
//!
//! Anything shaped like an independent distributed loop just implements
//! [`IndependentKernel`]: here, batches of Monte Carlo paths pricing a
//! basket of options (one work unit = one strike's batch of paths). The
//! balancer needs no application knowledge beyond the kernel's cost model
//! — rates are measured in work units per second either way.

use dlb::compiler::ir::build::*;
use dlb::compiler::{Affine, Program};
use dlb::core::driver::{run, AppSpec, RunConfig};
use dlb::core::kernels::IndependentKernel;
use dlb::core::msg::UnitData;
use dlb::sim::{CpuWork, LoadModel, NodeConfig};
use std::sync::Arc;

/// Monte Carlo option pricing: unit `i` prices strike `K_i` with
/// `paths` pseudo-random walks (deterministic per unit).
struct MonteCarlo {
    strikes: Vec<f64>,
    paths: usize,
    steps: usize,
}

impl MonteCarlo {
    fn price(&self, strike: f64, seed: u64) -> f64 {
        // A tiny fixed-seed LCG random walk: not finance-grade, but real
        // floating-point work with a verifiable deterministic answer.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut acc = 0.0;
        for _ in 0..self.paths {
            let mut s = 100.0f64;
            for _ in 0..self.steps {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((state >> 11) as f64) / ((1u64 << 53) as f64);
                s *= 1.0 + 0.02 * (u - 0.5);
            }
            acc += (s - strike).max(0.0);
        }
        acc / self.paths as f64
    }

    fn sequential(&self) -> Vec<f64> {
        (0..self.strikes.len())
            .map(|i| self.price(self.strikes[i], i as u64))
            .collect()
    }

    /// The equivalent IR program (one statement per strike batch), so the
    /// compiler can classify it and place hooks.
    fn program(&self) -> Program {
        let n = Affine::var("n");
        let i = Affine::var("i");
        Program {
            name: "monte-carlo".into(),
            params: vec![param("n", self.strikes.len() as i64)],
            arrays: vec![array("price", vec![n.clone()])],
            body: vec![for_loop(
                "i",
                0i64,
                n,
                vec![stmt(
                    "price[i] = monte_carlo(strike[i])",
                    vec![aref("price", vec![i.clone()])],
                    vec![],
                    (self.paths * self.steps * 6) as f64,
                )],
            )],
            distributed_var: "i".into(),
            distributed_array: "price".into(),
            distributed_dim: 0,
        }
    }
}

impl IndependentKernel for MonteCarlo {
    fn n_units(&self) -> usize {
        self.strikes.len()
    }
    fn invocations(&self) -> u64 {
        1
    }
    fn init_unit(&self, idx: usize) -> UnitData {
        vec![vec![self.strikes[idx], 0.0]]
    }
    fn compute(&self, idx: usize, unit: &mut UnitData, _invocation: u64) {
        let strike = unit[0][0];
        unit[0][1] = self.price(strike, idx as u64);
    }
    fn unit_cost(&self) -> CpuWork {
        CpuWork::from_flops((self.paths * self.steps * 6) as f64, 1.0)
    }
}

fn main() {
    let app = Arc::new(MonteCarlo {
        strikes: (0..200).map(|i| 60.0 + i as f64 * 0.4).collect(),
        paths: 2_000,
        steps: 50,
    });
    let plan = dlb::compiler::compile(&app.program()).expect("compiles");
    println!(
        "compiled `monte-carlo`: pattern {:?}, {} units of ~{:.2} s each",
        plan.pattern,
        plan.n_units,
        app.unit_cost().as_secs_f64()
    );

    let mut cfg = RunConfig::homogeneous(5);
    cfg.slave_nodes[3] = NodeConfig::with_load(LoadModel::Constant(2));
    let report = run(AppSpec::Independent(app.clone()), &plan, cfg);

    println!(
        "priced {} strikes in {:.1} virtual seconds; {} batches moved off the busy node",
        app.strikes.len(),
        report.compute_time.as_secs_f64(),
        report.stats.units_moved
    );

    // Verify every price against the sequential run.
    let seq = app.sequential();
    for (i, unit) in report.result.iter().enumerate() {
        assert_eq!(unit[0][1], seq[i], "strike {i}");
    }
    println!(
        "sample: strike {:.1} -> price {:.4} (verified) ✓",
        app.strikes[100], report.result[100][0][1]
    );
}
