//! Elastic membership: partition a 16-slave run, heal it, and watch the
//! evicted minority rejoin and reabsorb load.
//!
//! ```sh
//! cargo run --release --example elastic
//! ```
//!
//! A partition cuts the 4-slave minority off from the master's quorum
//! side. The quorum evicts the unreachable slaves after the suspicion
//! window and keeps computing on the survivor set; once the partition
//! heals, the minority learns its eviction from the master's repeated
//! verdict, re-enters the `Msg::Join` handshake as fresh incarnations,
//! and is readmitted at the next settled barrier — the balancer sheds
//! load back onto it and the run finishes bit-identical to the
//! sequential reference.
//!
//! This example sweeps the heal time on the same partition start and
//! prints the trade it controls: a longer outage means the quorum does
//! more of the work alone (and a late heal may not be worth readmitting
//! at all), while the eviction cost is fixed by the suspicion window.

use dlb::apps::{Calibration, MatMul, Sor};
use dlb::core::driver::{try_run, AppSpec, RunConfig};
use dlb::sim::{FaultPlan, SimDuration, SimTime};
use std::sync::Arc;

/// Node 0 hosts the master; slave `i` lives on node `i + 1`.
fn slave_node(i: usize) -> usize {
    i + 1
}

/// Fault-mode timers tight enough that the evict → heal → rejoin cycle
/// fits inside a short virtual run, with elastic membership enabled.
fn elastic_cfg(plan: FaultPlan) -> RunConfig {
    let mut cfg = RunConfig::homogeneous(16);
    cfg.balancer.enabled = true;
    cfg.fault_plan = Some(plan);
    cfg.fault_tolerance.suspicion = SimDuration::from_millis(500);
    cfg.fault_tolerance.speculate_after = SimDuration::from_millis(400);
    cfg.fault_tolerance.nudge = SimDuration::from_millis(200);
    cfg.fault_tolerance.slave_heartbeat = SimDuration::from_millis(100);
    cfg.fault_tolerance.rejoin_attempts = 10;
    cfg.fault_tolerance.rejoin_backoff = SimDuration::from_millis(200);
    cfg
}

fn main() {
    let mm = Arc::new(MatMul::new(32, 12, 7, &Calibration::new(0.05)));
    let plan = dlb::compiler::compile(&mm.program()).expect("compiles");
    let reference = mm.sequential();
    // Minority: slaves 12..15 (nodes 13..16); deputies 0..2 stay with the
    // master so the quorum side keeps its control plane.
    let minority: Vec<usize> = (12..16).map(slave_node).collect();

    println!("-- independent matmul, 16 slaves, 4 cut off at t=0.15s --");
    println!("heal at (s) | evicted | rejoined | heals | snapshot bytes | elapsed");
    for until in [600_000u64, 1_200_000, 1_800_000] {
        let fault =
            FaultPlan::new(71).partition(SimTime(150_000), SimTime(until), vec![minority.clone()]);
        let report = try_run(AppSpec::Independent(mm.clone()), &plan, elastic_cfg(fault))
            .expect("the run must survive the partition");
        let r = &report.recovery;
        println!(
            "{:>11.1} | {:>7} | {:>8} | {:>5} | {:>14} | {}",
            until as f64 / 1e6,
            r.slaves_declared_dead,
            r.rejoins_after_eviction,
            r.partitions_healed,
            r.join_snapshot_bytes,
            report.elapsed
        );
        assert_eq!(
            MatMul::result_c(&report.result),
            reference,
            "partition + heal must be exact (until={until})"
        );
    }
    println!("every heal time bit-identical to sequential execution ✓");

    // A checkpointed engine must ship the newest banked snapshot to a
    // latecomer — the readmission is a real state transfer, not a
    // recompute. SOR joins a fresh slave mid-run and meters the bytes.
    let sor = Arc::new(Sor::new(36, 4, 7, &Calibration::new(0.002)));
    let plan = dlb::compiler::compile(&sor.program()).expect("compiles");
    println!("\n-- pipelined SOR, 16 slaves, slave 7 joins at t=0.2s --");
    let mut cfg = elastic_cfg(FaultPlan::new(72));
    cfg.fault_tolerance.suspicion = SimDuration::from_millis(2000);
    cfg.fault_tolerance.speculate_after = SimDuration::from_millis(1600);
    cfg.fault_tolerance.nudge = SimDuration::from_millis(800);
    cfg.late_joiners = vec![(7, SimTime(200_000))];
    let report = try_run(AppSpec::Pipelined(sor.clone()), &plan, cfg)
        .expect("the run must survive the late join");
    let r = &report.recovery;
    assert!(r.joins_admitted >= 1, "the latecomer must be admitted");
    assert!(
        r.join_snapshot_bytes > 0,
        "a snapshot must ride the admission"
    );
    println!(
        "admitted {} | snapshot bytes {} | elapsed {}",
        r.joins_admitted, r.join_snapshot_bytes, report.elapsed
    );
    assert_eq!(
        sor.result_grid(&report.result),
        sor.sequential(),
        "late join must be exact"
    );
    println!("latecomer admitted from a banked snapshot, bit-identical ✓");
}
